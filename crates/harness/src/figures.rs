//! Figure extraction and table formatting.
//!
//! Turns raw sweep results into the normalized series each paper figure
//! plots, and renders them as aligned text tables or CSV. This code
//! moved here from `miopt-bench` so that both the `miopt-harness` CLI
//! and the bench crate's `figures` binary regenerate figures through the
//! same parallel orchestration path; `miopt-bench` re-exports this
//! module for compatibility.

use miopt::runner::{LadderResult, RunResult};

/// A figure's data: one row per workload, one named series per column.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// Figure title.
    pub title: String,
    /// Workload names, in the paper's order.
    pub workloads: Vec<String>,
    /// `(series label, value per workload)`.
    pub series: Vec<(String, Vec<f64>)>,
}

impl FigureData {
    /// Renders the figure as an aligned text table.
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let w0 = self
            .workloads
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(8)
            .max(8);
        out.push_str(&format!("{:w0$}", "workload"));
        for (label, _) in &self.series {
            out.push_str(&format!(" {label:>14}"));
        }
        out.push('\n');
        for (i, wl) in self.workloads.iter().enumerate() {
            out.push_str(&format!("{wl:w0$}"));
            for (_, vals) in &self.series {
                out.push_str(&format!(" {:>14.4}", vals[i]));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the figure as CSV (header + one row per workload).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload");
        for (label, _) in &self.series {
            out.push(',');
            out.push_str(label);
        }
        out.push('\n');
        for (i, wl) in self.workloads.iter().enumerate() {
            out.push_str(wl);
            for (_, vals) in &self.series {
                out.push_str(&format!(",{}", vals[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Extracts a per-policy metric from a static sweep, normalized per
/// workload by the first (Uncached) policy when requested.
fn sweep_series(
    title: &str,
    sweep: &[Vec<RunResult>],
    metric: impl Fn(&RunResult) -> f64,
    normalize_to_first: bool,
) -> FigureData {
    let workloads = sweep.iter().map(|runs| runs[0].workload.clone()).collect();
    let n_policies = sweep.first().map_or(0, Vec::len);
    let mut series = Vec::new();
    for p in 0..n_policies {
        let label = sweep[0][p].policy.label();
        let vals = sweep
            .iter()
            .map(|runs| {
                let v = metric(&runs[p]);
                if normalize_to_first {
                    let base = metric(&runs[0]);
                    if base == 0.0 {
                        0.0
                    } else {
                        v / base
                    }
                } else {
                    v
                }
            })
            .collect();
        series.push((label, vals));
    }
    FigureData {
        title: title.to_string(),
        workloads,
        series,
    }
}

/// Figure 4: compute bandwidth (GVOPS) with the CacheR policy.
#[must_use]
pub fn fig4(sweep: &[Vec<RunResult>]) -> FigureData {
    let workloads: Vec<String> = sweep.iter().map(|r| r[0].workload.clone()).collect();
    let vals = sweep
        .iter()
        .map(|runs| runs[1].metrics.gvops()) // index 1 = CacheR
        .collect();
    FigureData {
        title: "Figure 4: Compute BW (GVOPS), CacheR".to_string(),
        workloads,
        series: vec![("GVOPS".to_string(), vals)],
    }
}

/// Figure 5: data bandwidth (giga memory requests per second), CacheR.
#[must_use]
pub fn fig5(sweep: &[Vec<RunResult>]) -> FigureData {
    let workloads: Vec<String> = sweep.iter().map(|r| r[0].workload.clone()).collect();
    let vals = sweep.iter().map(|runs| runs[1].metrics.gmrs()).collect();
    FigureData {
        title: "Figure 5: Data BW (GMR/s), CacheR".to_string(),
        workloads,
        series: vec![("GMR/s".to_string(), vals)],
    }
}

/// Figure 6: execution time per static policy, normalized to Uncached.
#[must_use]
pub fn fig6(sweep: &[Vec<RunResult>]) -> FigureData {
    sweep_series(
        "Figure 6: Normalized execution time (to Uncached)",
        sweep,
        |r| r.metrics.cycles as f64,
        true,
    )
}

/// Figure 7: DRAM accesses per static policy, normalized to Uncached.
#[must_use]
pub fn fig7(sweep: &[Vec<RunResult>]) -> FigureData {
    sweep_series(
        "Figure 7: DRAM accesses (normalized to Uncached)",
        sweep,
        |r| r.metrics.dram_accesses() as f64,
        true,
    )
}

/// Figure 8: cache stalls per GPU memory request (log scale in the paper).
#[must_use]
pub fn fig8(sweep: &[Vec<RunResult>]) -> FigureData {
    sweep_series(
        "Figure 8: Cache stalls per memory request",
        sweep,
        |r| r.metrics.stalls_per_request(),
        false,
    )
}

/// Figure 9: DRAM row-buffer hit ratio per static policy.
#[must_use]
pub fn fig9(sweep: &[Vec<RunResult>]) -> FigureData {
    sweep_series(
        "Figure 9: DRAM row buffer hit ratio",
        sweep,
        |r| r.metrics.row_hit_ratio(),
        false,
    )
}

fn ladder_figure(
    title: &str,
    ladders: &[LadderResult],
    metric: impl Fn(&RunResult) -> f64,
    normalize: impl Fn(&LadderResult) -> f64,
) -> FigureData {
    let workloads = ladders.iter().map(|l| l.workload.clone()).collect();
    let mut series: Vec<(String, Vec<f64>)> = vec![
        ("StaticBest".to_string(), Vec::new()),
        ("StaticWorst".to_string(), Vec::new()),
        ("CacheRW-AB".to_string(), Vec::new()),
        ("CacheRW-CR".to_string(), Vec::new()),
        ("CacheRW-PCby".to_string(), Vec::new()),
    ];
    for l in ladders {
        let base = normalize(l);
        let norm = |v: f64| if base == 0.0 { 0.0 } else { v / base };
        series[0].1.push(norm(metric(l.static_best())));
        series[1].1.push(norm(metric(l.static_worst())));
        for (i, run) in l.ladder.iter().enumerate() {
            series[2 + i].1.push(norm(metric(run)));
        }
    }
    FigureData {
        title: title.to_string(),
        workloads,
        series,
    }
}

/// Figure 10: ladder execution time normalized to the static best.
#[must_use]
pub fn fig10(ladders: &[LadderResult]) -> FigureData {
    ladder_figure(
        "Figure 10: Execution time (normalized to StaticBest)",
        ladders,
        |r| r.metrics.cycles as f64,
        |l| l.static_best().metrics.cycles as f64,
    )
}

/// Figure 11: ladder DRAM accesses normalized to Uncached.
#[must_use]
pub fn fig11(ladders: &[LadderResult]) -> FigureData {
    ladder_figure(
        "Figure 11: DRAM accesses (normalized to Uncached)",
        ladders,
        |r| r.metrics.dram_accesses() as f64,
        |l| l.uncached().metrics.dram_accesses() as f64,
    )
}

/// Figure 12: ladder cache stalls per memory request.
#[must_use]
pub fn fig12(ladders: &[LadderResult]) -> FigureData {
    ladder_figure(
        "Figure 12: Cache stalls per memory request",
        ladders,
        |r| r.metrics.stalls_per_request(),
        |_| 1.0,
    )
}

/// Figure 13: ladder DRAM row hit ratio.
#[must_use]
pub fn fig13(ladders: &[LadderResult]) -> FigureData {
    ladder_figure(
        "Figure 13: DRAM row hit ratio",
        ladders,
        |r| r.metrics.row_hit_ratio(),
        |_| 1.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use miopt::runner::{run_ladder_with_statics, run_one, run_static_sweep};
    use miopt::{CachePolicy, PolicyConfig, SystemConfig};
    use miopt_workloads::{by_name, SuiteConfig};

    fn tiny_sweep() -> Vec<Vec<RunResult>> {
        let cfg = SystemConfig::small_test();
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        run_static_sweep(&cfg, &[w]).expect("sweep finishes")
    }

    #[test]
    fn fig6_normalizes_uncached_to_one() {
        let f = fig6(&tiny_sweep());
        assert_eq!(f.series[0].0, "Uncached");
        assert!((f.series[0].1[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig7_cached_below_one_for_reuse() {
        let f = fig7(&tiny_sweep());
        let cacher = &f.series[1];
        assert!(
            cacher.1[0] < 1.0,
            "FwSoft re-reads must reduce DRAM traffic"
        );
    }

    #[test]
    fn tables_and_csv_render() {
        let f = fig6(&tiny_sweep());
        let t = f.to_table();
        assert!(t.contains("FwSoft"));
        assert!(t.contains("CacheRW"));
        let c = f.to_csv();
        assert!(c.starts_with("workload,Uncached,CacheR,CacheRW"));
        assert_eq!(c.lines().count(), 2);
    }

    #[test]
    fn ladder_figures_have_five_series() {
        let cfg = SystemConfig::small_test();
        let w = by_name(&SuiteConfig::quick(), "FwSoft").unwrap();
        let statics: Vec<RunResult> = CachePolicy::ALL
            .iter()
            .map(|&p| run_one(&cfg, &w, PolicyConfig::of(p)).expect("run finishes"))
            .collect();
        let ladder = vec![run_ladder_with_statics(&cfg, &w, statics).expect("ladder finishes")];
        for f in [
            fig10(&ladder),
            fig11(&ladder),
            fig12(&ladder),
            fig13(&ladder),
        ] {
            assert_eq!(f.series.len(), 5, "{}", f.title);
            assert_eq!(f.series[4].0, "CacheRW-PCby");
        }
        // Fig 10 static best is exactly 1.0 by construction.
        let f10 = fig10(&ladder);
        assert!((f10.series[0].1[0] - 1.0).abs() < 1e-12);
    }
}
