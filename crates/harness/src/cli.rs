//! The `miopt-harness` command line: regenerates every table and figure
//! of the paper's evaluation through the parallel sweep orchestrator.
//!
//! ```text
//! miopt-harness [--scale paper|quick] [--only <w>[,<w>...]]
//!     [--csv <dir>] [--table1] [--table2] [--fig4] ... [--fig13] [--all]
//!     [--jobs N] [--serial] [--no-cache] [--cache-dir <dir>]
//!     [--out <dir>] [--sweep-name <name>] [--timeout-secs N]
//!     [--quiet] [--compare] [--telemetry[=interval]]
//!     [--check-invariants] [--no-skip] [--fail-fast] [--retries N]
//!     [--no-journal] [--resume <run-id>]
//! ```
//!
//! With no figure selector, everything is regenerated (`--all`). The
//! `figures` binary in `miopt-bench` is a thin wrapper over this module,
//! so both entry points behave identically.

use crate::cache::ResultCache;
use crate::figures::{fig10, fig11, fig12, fig13, fig4, fig5, fig6, fig7, fig8, fig9, FigureData};
use crate::pool::{PoolOptions, RetryPolicy};
use crate::sweep::{run_sweep, run_sweep_journaled, JournalOptions, SweepOptions, SweepRun};
use miopt::runner::SweepSpec;
use miopt::SystemConfig;
use miopt_workloads::{suite, SuiteConfig, Workload};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ALL_OUTPUTS: [&str; 12] = [
    "table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
    "fig13",
];

/// Sampling interval a bare `--telemetry` selects, in cycles.
pub const DEFAULT_TELEMETRY_INTERVAL: u64 = 100_000;

/// Parsed command-line options.
pub struct CliArgs {
    /// Workload suite scale.
    pub scale: SuiteConfig,
    /// The scale's name (`"paper"` or `"quick"`), for artifact naming.
    pub scale_name: String,
    /// Lower-cased workload-name filter, when `--only` was given.
    pub only: Option<BTreeSet<String>>,
    /// Directory for CSV emission, when `--csv` was given.
    pub csv_dir: Option<String>,
    /// Selected outputs (table/figure names without the `--`).
    pub selected: BTreeSet<String>,
    /// Worker threads (0 = all available cores).
    pub jobs: usize,
    /// Skip the persistent result cache.
    pub no_cache: bool,
    /// Result cache directory.
    pub cache_dir: PathBuf,
    /// Directory sweep reports are written under.
    pub runs_dir: PathBuf,
    /// Sweep report name (the `results/runs/<name>.json` stem).
    pub sweep_name: String,
    /// Per-job wall-clock timeout.
    pub timeout: Option<Duration>,
    /// Suppress per-job progress lines.
    pub quiet: bool,
    /// Run the sweep serially AND in parallel and verify byte-identical
    /// figures, reporting the speedup.
    pub compare: bool,
    /// Telemetry sampling interval in cycles, when `--telemetry` was
    /// given (`None` = telemetry off).
    pub telemetry: Option<u64>,
    /// Enable sentinel invariant checking and the forward-progress
    /// watchdog for every job.
    pub check_invariants: bool,
    /// Force per-cycle stepping, disabling event-driven time skipping
    /// (bit-identical, slower; for equivalence checks and debugging).
    pub no_skip: bool,
    /// Cancel queued jobs after the first failure.
    pub fail_fast: bool,
    /// Extra attempts for timed-out/panicked jobs (0 = no retries).
    pub retries: usize,
    /// Disable the write-ahead journal (journaling is on by default for
    /// non-telemetry sweeps).
    pub no_journal: bool,
    /// Resume the named interrupted run instead of starting fresh.
    pub resume: Option<String>,
}

/// Parses CLI arguments (everything after the program name).
///
/// # Panics
///
/// Panics with a descriptive message on malformed arguments, matching
/// the historical `figures` binary behaviour.
#[must_use]
pub fn parse_args(args: impl Iterator<Item = String>) -> CliArgs {
    let mut out = CliArgs {
        scale: SuiteConfig::paper(),
        scale_name: "paper".to_string(),
        only: None,
        csv_dir: None,
        selected: BTreeSet::new(),
        jobs: 0,
        no_cache: false,
        cache_dir: ResultCache::default_dir(),
        runs_dir: PathBuf::from("results/runs"),
        sweep_name: String::new(),
        timeout: None,
        quiet: false,
        compare: false,
        telemetry: None,
        check_invariants: false,
        no_skip: false,
        fail_fast: false,
        retries: 0,
        no_journal: false,
        resume: None,
    };
    let mut args = args;
    while let Some(a) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--scale" => {
                let v = value("--scale");
                out.scale = match v.as_str() {
                    "paper" => SuiteConfig::paper(),
                    "quick" => SuiteConfig::quick(),
                    other => panic!("unknown scale {other:?} (use paper|quick)"),
                };
                out.scale_name = v;
            }
            "--only" => {
                out.only = Some(value("--only").split(',').map(str::to_lowercase).collect());
            }
            "--csv" => out.csv_dir = Some(value("--csv")),
            "--jobs" => {
                out.jobs = value("--jobs").parse().expect("--jobs needs a number");
            }
            "--serial" => out.jobs = 1,
            "--no-cache" => out.no_cache = true,
            "--cache-dir" => out.cache_dir = PathBuf::from(value("--cache-dir")),
            "--out" => out.runs_dir = PathBuf::from(value("--out")),
            "--sweep-name" => out.sweep_name = value("--sweep-name"),
            "--timeout-secs" => {
                let secs: u64 = value("--timeout-secs")
                    .parse()
                    .expect("--timeout-secs needs a number");
                out.timeout = Some(Duration::from_secs(secs));
            }
            "--quiet" => out.quiet = true,
            "--compare" => out.compare = true,
            "--check-invariants" => out.check_invariants = true,
            "--no-skip" => out.no_skip = true,
            "--fail-fast" => out.fail_fast = true,
            "--retries" => {
                out.retries = value("--retries")
                    .parse()
                    .expect("--retries needs a number");
            }
            "--no-journal" => out.no_journal = true,
            "--resume" => out.resume = Some(value("--resume")),
            "--telemetry" => out.telemetry = Some(DEFAULT_TELEMETRY_INTERVAL),
            s if s.starts_with("--telemetry=") => {
                let interval: u64 = s["--telemetry=".len()..]
                    .parse()
                    .expect("--telemetry=N needs a cycle count");
                assert!(
                    interval > 0,
                    "--telemetry interval must be at least 1 cycle"
                );
                out.telemetry = Some(interval);
            }
            "--all" => out.selected.extend(ALL_OUTPUTS.map(String::from)),
            s if s.starts_with("--") && ALL_OUTPUTS.contains(&s.trim_start_matches("--")) => {
                out.selected.insert(s.trim_start_matches("--").to_string());
            }
            other => panic!("unexpected argument {other:?}"),
        }
    }
    if out.selected.is_empty() {
        out.selected.extend(ALL_OUTPUTS.map(String::from));
    }
    if out.sweep_name.is_empty() {
        out.sweep_name = format!("figures-{}", out.scale_name);
    }
    if let Some(id) = &out.resume {
        // The run id names both the journal and the report.
        out.sweep_name.clone_from(id);
    }
    out
}

fn print_table1(cfg: &SystemConfig) {
    println!("== Table 1: Key simulated system parameters ==");
    println!("GPU clock                {:.0} MHz", cfg.gpu_clock_hz / 1e6);
    println!("# of CUs                 {}", cfg.n_cus);
    println!("# SIMD units per CU      {}", cfg.cu.simds);
    println!("Max wavefronts per SIMD  {}", cfg.cu.wf_slots_per_simd);
    println!(
        "GPU L1 D-cache per CU    {} KB, 64B line, {}-way write-through",
        cfg.l1.bytes() / 1024,
        cfg.l1.ways
    );
    println!(
        "GPU L2 cache             {} MB ({} slices), 64B line, {}-way",
        cfg.l2.bytes() * cfg.l2_slices as u64 / (1024 * 1024),
        cfg.l2_slices,
        cfg.l2.ways
    );
    println!(
        "Main memory              HBM2, {} channels, {} banks/channel, ~{:.0} GB/s",
        cfg.dram.channels,
        cfg.dram.banks,
        f64::from(cfg.dram.channels) * 64.0 * cfg.gpu_clock_hz / cfg.dram.t_burst as f64 / 1e9
    );
    println!();
}

fn print_table2(workloads: &[Workload]) {
    println!("== Table 2: Studied MI workloads ==");
    println!(
        "{:10} {:>14} {:>14} {:>16}",
        "workload", "unique kernels", "total kernels", "footprint"
    );
    for w in workloads {
        let fp = w.footprint_bytes();
        let fp_str = if fp >= 1024 * 1024 {
            format!("{:.1} MB", fp as f64 / (1024.0 * 1024.0))
        } else {
            format!("{:.1} KB", fp as f64 / 1024.0)
        };
        println!(
            "{:10} {:>14} {:>14} {:>16}",
            w.name,
            w.unique_kernels(),
            w.total_kernels(),
            fp_str
        );
    }
    println!();
}

fn emit(fig: &FigureData, csv_dir: Option<&str>, file: &str) {
    println!("{}", fig.to_table());
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = format!("{dir}/{file}.csv");
        std::fs::write(&path, fig.to_csv()).expect("write csv");
        println!("(wrote {path})");
    }
}

/// All six static-sweep figures plus the four ladder figures from one
/// figures-grid sweep, keyed by output name.
fn figure_set(
    spec: &SweepSpec,
    results: &[miopt::runner::RunResult],
    want_ladder: bool,
) -> Vec<(&'static str, &'static str, FigureData)> {
    let sweep = spec.assemble_statics(results);
    let mut figs = vec![
        ("fig4", "fig4_gvops", fig4(&sweep)),
        ("fig5", "fig5_gmrs", fig5(&sweep)),
        ("fig6", "fig6_exec_time", fig6(&sweep)),
        ("fig7", "fig7_dram_accesses", fig7(&sweep)),
        ("fig8", "fig8_cache_stalls", fig8(&sweep)),
        ("fig9", "fig9_row_hits", fig9(&sweep)),
    ];
    if want_ladder {
        let ladders = spec.assemble_ladders(results);
        figs.push(("fig10", "fig10_opt_exec_time", fig10(&ladders)));
        figs.push(("fig11", "fig11_opt_dram", fig11(&ladders)));
        figs.push(("fig12", "fig12_opt_stalls", fig12(&ladders)));
        figs.push(("fig13", "fig13_opt_rows", fig13(&ladders)));
    }
    figs
}

/// Runs the CLI. Returns the process exit code.
#[must_use]
pub fn run(args: &CliArgs) -> i32 {
    let cfg = SystemConfig::builder()
        .build()
        .expect("the paper's Table 1 configuration is self-consistent");
    let mut workloads = suite(&args.scale);
    if let Some(only) = &args.only {
        workloads.retain(|w| only.contains(&w.name.to_lowercase()));
        assert!(!workloads.is_empty(), "--only matched no workloads");
    }
    let sel = |s: &str| args.selected.contains(s);

    if sel("table1") {
        print_table1(&cfg);
    }
    if sel("table2") {
        print_table2(&workloads);
    }

    let need_sweep = ALL_OUTPUTS[2..].iter().any(|f| sel(f));
    if !need_sweep {
        return 0;
    }
    let need_ladder = ["fig10", "fig11", "fig12", "fig13"].iter().any(|f| sel(f));

    // One grid covers all selected figures: the static prefix feeds
    // figures 4-9 and the ladder suffix feeds 10-13.
    let mut spec = if need_ladder {
        SweepSpec::figures(cfg, workloads)
    } else {
        SweepSpec::statics(cfg, workloads)
    };
    if let Some(interval) = args.telemetry {
        spec = spec.with_telemetry(interval);
    }
    if args.check_invariants {
        spec = spec.with_invariant_checks();
    }
    if args.no_skip {
        spec = spec.with_no_skip();
    }
    let spec = Arc::new(spec);
    let opts = SweepOptions {
        pool: PoolOptions {
            workers: args.jobs,
            job_timeout: args.timeout,
            progress: !args.quiet,
            retry: RetryPolicy {
                max_attempts: args.retries + 1,
                ..RetryPolicy::default()
            },
            fail_fast: args.fail_fast,
        },
        cache: (!args.no_cache).then(|| ResultCache::new(&args.cache_dir)),
    };
    if args.resume.is_some() && args.telemetry.is_some() {
        eprintln!("error: --resume cannot be combined with --telemetry (telemetry sweeps are not journaled)");
        return 1;
    }
    let journaled = args.telemetry.is_none() && !args.no_journal;

    eprintln!(
        "running sweep: {} workloads x {} policies = {} jobs on {} worker(s) ...",
        spec.workloads.len(),
        spec.policies.len(),
        spec.job_count(),
        opts.pool.effective_workers(),
    );
    let t0 = Instant::now();
    let run: SweepRun = if journaled {
        let journal = JournalOptions {
            dir: args.runs_dir.clone(),
            resume: args.resume.is_some(),
        };
        eprintln!(
            "run id: {} (resume an interrupted sweep with --resume {})",
            args.sweep_name, args.sweep_name
        );
        match run_sweep_journaled(&spec, &args.sweep_name, &opts, &journal) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        }
    } else {
        run_sweep(&spec, &args.sweep_name, &opts)
    };
    let parallel_elapsed = t0.elapsed();
    eprintln!("sweep done in {:.1}s", parallel_elapsed.as_secs_f64());

    match run.report.write_under(&args.runs_dir) {
        Ok(path) => {
            eprintln!("(wrote {})", path.display());
            // The final report is durable; drop the write-ahead state.
            run.remove_journal_state();
        }
        Err(e) => eprintln!("warning: could not write sweep report: {e}"),
    }

    let results = match run.results(&spec) {
        Ok(r) => r,
        Err(failures) => {
            eprintln!(
                "error: {} job(s) failed:\n{failures}",
                failures.lines().count()
            );
            return 1;
        }
    };

    if args.telemetry.is_some() {
        let dir = args.runs_dir.join(format!("{}-telemetry", args.sweep_name));
        let mut written = 0usize;
        for result in &results {
            match crate::telemetry::write_files(&dir, result) {
                Ok(Some(_)) => written += 1,
                Ok(None) => {}
                Err(e) => {
                    eprintln!(
                        "warning: could not write telemetry for {}: {e}",
                        result.workload
                    );
                }
            }
        }
        eprintln!("(wrote {written} telemetry series under {})", dir.display());
    }

    let csv = args.csv_dir.as_deref();
    for (name, file, fig) in figure_set(&spec, &results, need_ladder) {
        if sel(name) {
            emit(&fig, csv, file);
        }
    }

    if args.compare {
        return compare(&spec, &results, need_ladder, parallel_elapsed, &opts);
    }
    0
}

/// Re-runs the sweep serially and uncached, then verifies the parallel
/// figures are byte-identical and reports the wall-time ratio.
fn compare(
    spec: &Arc<SweepSpec>,
    parallel_results: &[miopt::runner::RunResult],
    need_ladder: bool,
    parallel_elapsed: Duration,
    opts: &SweepOptions,
) -> i32 {
    eprintln!("comparing against a serial uncached sweep ...");
    let serial_opts = SweepOptions {
        pool: PoolOptions {
            workers: 1,
            progress: opts.pool.progress,
            ..opts.pool.clone()
        },
        cache: None,
    };
    let t0 = Instant::now();
    let serial = run_sweep(spec, "compare-serial", &serial_opts);
    let serial_elapsed = t0.elapsed();
    let serial_results = match serial.results(spec) {
        Ok(r) => r,
        Err(failures) => {
            eprintln!("error: serial comparison run failed:\n{failures}");
            return 1;
        }
    };
    let a = figure_set(spec, parallel_results, need_ladder);
    let b = figure_set(spec, &serial_results, need_ladder);
    for ((name, _, fa), (_, _, fb)) in a.iter().zip(&b) {
        assert_eq!(
            fa.to_csv(),
            fb.to_csv(),
            "{name}: parallel and serial sweeps must be byte-identical"
        );
    }
    eprintln!(
        "parallel and serial figures are byte-identical ({} figures checked)",
        a.len()
    );
    eprintln!(
        "serial {:.1}s vs parallel {:.1}s: {:.2}x",
        serial_elapsed.as_secs_f64(),
        parallel_elapsed.as_secs_f64(),
        serial_elapsed.as_secs_f64() / parallel_elapsed.as_secs_f64().max(1e-9),
    );
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(list: &[&str]) -> CliArgs {
        parse_args(list.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn defaults_select_everything() {
        let a = parse(&[]);
        assert_eq!(a.selected.len(), ALL_OUTPUTS.len());
        assert_eq!(a.jobs, 0);
        assert!(!a.no_cache);
        assert_eq!(a.sweep_name, "figures-paper");
    }

    #[test]
    fn flags_parse() {
        let a = parse(&[
            "--scale",
            "quick",
            "--only",
            "FwSoft,FwPool",
            "--csv",
            "/tmp/x",
            "--fig6",
            "--jobs",
            "4",
            "--no-cache",
            "--timeout-secs",
            "30",
            "--quiet",
            "--sweep-name",
            "mysweep",
        ]);
        assert_eq!(a.scale_name, "quick");
        assert_eq!(a.only.as_ref().unwrap().len(), 2);
        assert!(a.only.unwrap().contains("fwsoft"));
        assert_eq!(a.selected.iter().collect::<Vec<_>>(), vec!["fig6"]);
        assert_eq!(a.jobs, 4);
        assert!(a.no_cache);
        assert_eq!(a.timeout, Some(Duration::from_secs(30)));
        assert!(a.quiet);
        assert_eq!(a.sweep_name, "mysweep");
    }

    #[test]
    fn serial_is_one_worker() {
        assert_eq!(parse(&["--serial"]).jobs, 1);
    }

    #[test]
    fn telemetry_flag_parses_bare_and_with_interval() {
        assert_eq!(parse(&[]).telemetry, None);
        assert_eq!(
            parse(&["--telemetry"]).telemetry,
            Some(DEFAULT_TELEMETRY_INTERVAL)
        );
        assert_eq!(parse(&["--telemetry=2500"]).telemetry, Some(2500));
    }

    #[test]
    #[should_panic(expected = "at least 1 cycle")]
    fn zero_telemetry_interval_rejected() {
        drop(parse(&["--telemetry=0"]));
    }

    #[test]
    #[should_panic(expected = "unexpected argument")]
    fn unknown_positional_rejected() {
        drop(parse(&["fig6"]));
    }

    #[test]
    fn robustness_flags_parse() {
        let a = parse(&[
            "--check-invariants",
            "--no-skip",
            "--fail-fast",
            "--retries",
            "2",
            "--no-journal",
        ]);
        assert!(a.check_invariants);
        assert!(a.no_skip);
        assert!(a.fail_fast);
        assert_eq!(a.retries, 2);
        assert!(a.no_journal);
        assert!(a.resume.is_none());
        let d = parse(&[]);
        assert!(!d.check_invariants && !d.no_skip && !d.fail_fast && !d.no_journal);
        assert_eq!(d.retries, 0);
    }

    #[test]
    fn resume_names_the_run() {
        let a = parse(&["--resume", "figures-quick"]);
        assert_eq!(a.resume.as_deref(), Some("figures-quick"));
        assert_eq!(a.sweep_name, "figures-quick");
        // An explicit --sweep-name is overridden by the resume id: the
        // journal lives under the original run's name.
        let b = parse(&["--sweep-name", "other", "--resume", "orig"]);
        assert_eq!(b.sweep_name, "orig");
    }
}
