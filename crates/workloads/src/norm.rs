//! Batch-normalization layers (DNNMark).
//!
//! Forward BN makes two passes over its input (statistics, then
//! normalization); backward BN makes several passes over small arrays that
//! fit entirely in the L2 and coalesces its gradient stores — the paper's
//! strongest write-caching winner (up to 71% memory-demand reduction and
//! 32% speedup with CacheRW, and *higher* DRAM row hit rates with caching
//! because only the regular compulsory misses reach DRAM).

use crate::patterns::{PatternKind, PatternSpec};
use crate::{kernel, Category, RegionAlloc, SuiteConfig, Workload};
use miopt_gpu::Op;

/// Forward batch normalization. Paper: batch 256, 42 MB footprint.
pub(crate) fn fw_bn(cfg: &SuiteConfig, index: u64) -> Workload {
    let mut alloc = RegionAlloc::for_workload(index);
    let bytes = cfg.scaled(21 * 1024 * 1024);
    let x = alloc.region(bytes);
    let y = alloc.region(bytes);
    let elems = bytes / 4;
    // 16 iterations per wavefront give each a chunk several times the
    // re-read lag; the per-pass reuse window across all resident
    // wavefronts exceeds the L1s but fits the shared L2.
    let iters = 16;
    let wgs = (elems.div_ceil(4 * 64 * u64::from(iters))).max(1) as u32;
    let lag = 2048;
    let k = kernel(
        "fw_bn",
        (index * 8) as u16,
        wgs,
        4,
        iters,
        vec![
            Op::Load { pattern: 0 },
            Op::Load { pattern: 1 },
            Op::WaitCnt { max: 16 },
            Op::Valu { count: 2 },
            Op::Store { pattern: 2 },
        ],
        vec![
            PatternSpec::stream(x),
            PatternSpec {
                region: x,
                elem_bytes: 4,
                kind: PatternKind::ChunkReread { lag_bytes: lag },
                seq_stride_bytes: 0,
            },
            PatternSpec::stream(y),
        ],
    );
    Workload {
        name: "FwBN".to_string(),
        category: Category::ReuseSensitive,
        launches: vec![k],
        footprint: alloc.allocated(),
    }
}

/// Backward batch normalization. Paper: batch 512, 5.88 MB footprint —
/// small enough that the whole working set lives in the L2.
pub(crate) fn bw_bn(cfg: &SuiteConfig, index: u64) -> Workload {
    let mut alloc = RegionAlloc::for_workload(index);
    // The paper's absolute size (5.88 MB total): small workloads are not
    // scaled. The within-chunk re-read distance is what the caches
    // capture, so the slight excess over the 4 MB L2 does not matter.
    let bytes = 1920 * 1024;
    let _ = cfg;
    let x = alloc.region(bytes);
    let dy = alloc.region(bytes);
    let dx = alloc.region(bytes);
    let elems = bytes / 4;
    let iters = 16;
    let wgs = (elems.div_ceil(4 * 64 * u64::from(iters))).max(1) as u32;
    let lag = 2048;
    let k = kernel(
        "bw_bn",
        (index * 8) as u16,
        wgs,
        4,
        iters,
        vec![
            // Statistics pass: read x and dy.
            Op::Load { pattern: 0 },
            Op::Load { pattern: 1 },
            Op::WaitCnt { max: 16 },
            Op::Valu { count: 2 },
            // Gradient pass: re-read both at a lag, write dx twice
            // (the dgamma/dbeta accumulation revisits lines).
            Op::Load { pattern: 2 },
            Op::Load { pattern: 3 },
            Op::WaitCnt { max: 16 },
            Op::Valu { count: 2 },
            Op::Store { pattern: 4 },
        ],
        vec![
            PatternSpec::stream(x),
            PatternSpec::stream(dy),
            PatternSpec {
                region: x,
                elem_bytes: 4,
                kind: PatternKind::ChunkReread { lag_bytes: lag },
                seq_stride_bytes: 0,
            },
            PatternSpec {
                region: dy,
                elem_bytes: 4,
                kind: PatternKind::ChunkReread { lag_bytes: lag },
                seq_stride_bytes: 0,
            },
            PatternSpec {
                region: dx,
                elem_bytes: 4,
                kind: PatternKind::Revisit { times: 2 },
                seq_stride_bytes: 0,
            },
        ],
    );
    Workload {
        name: "BwBN".to_string(),
        category: Category::ReuseSensitive,
        launches: vec![k],
        footprint: alloc.allocated(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bw_bn_matches_paper_footprint() {
        // Paper Table 2: 5.88 MB (not scaled; small workload).
        let w = bw_bn(&SuiteConfig::paper(), 12);
        let mb = w.footprint as f64 / (1024.0 * 1024.0);
        assert!((5.0..6.5).contains(&mb), "{mb} MB");
    }

    #[test]
    fn fw_bn_rereads_its_input() {
        let w = fw_bn(&SuiteConfig::quick(), 3);
        let body = &w.launches[0].program.body;
        let loads = body.iter().filter(|o| matches!(o, Op::Load { .. })).count();
        assert_eq!(loads, 2, "statistics + normalization passes");
    }

    #[test]
    fn bw_bn_store_revisits_for_coalescing() {
        let w = bw_bn(&SuiteConfig::quick(), 12);
        assert!(w.launches[0]
            .program
            .body
            .iter()
            .any(|o| matches!(o, Op::Store { .. })));
    }
}
