//! DeepBench GEMM kernels (SGEMM / DGEMM, 4K x 128 x 4K in the paper,
//! scaled to 1K x 128 x 1K here).
//!
//! Tiled GEMM is the paper's compute-bound archetype: small A/B matrices
//! are swept repeatedly by every work-group (74–84% of loads hit with read
//! caching) but execution time barely moves because the MAC pipeline is
//! the bottleneck.

use crate::patterns::{PatternKind, PatternSpec};
use crate::{kernel, Category, RegionAlloc, SuiteConfig, Workload};
use miopt_gpu::Op;

struct GemmShape {
    elem_bytes: u32,
    /// SIMD occupancy per k-tile modeling the MAC work (and, for f64, the
    /// half-rate pipeline).
    valu_per_tile: u32,
    lds_per_tile: u32,
}

fn gemm(name: &str, index: u64, cfg: &SuiteConfig, shape: &GemmShape) -> Workload {
    let mut alloc = RegionAlloc::for_workload(index);
    let eb = u64::from(shape.elem_bytes);
    // The paper's full GEMM dimensions: the 4Kx128x4K shape is what makes
    // A and B (2 MB each) fit the L2 while C streams, and what puts the
    // arithmetic intensity at the compute/memory ridge; scaling M and N
    // down would turn the kernel memory-bound and break the paper's
    // "insensitive" classification. The quick scale shrinks M and N for
    // test speed (and accepts the classification shift).
    let div = if cfg.footprint_divisor > 16 { 16 } else { 4 };
    let (m, n, k_dim) = (4096 / div, 4096 / div, 128);
    let a = alloc.region(m * k_dim * eb);
    let b = alloc.region(k_dim * n * eb);
    let c = alloc.region(m * n * eb);

    // 64x64 output tiles, 4 wavefronts each; 16 k-tiles of 8.
    let wgs = ((m / 64) * (n / 64)) as u32;
    let iters = (k_dim / 8) as u32;
    let k = kernel(
        name,
        (index * 8) as u16,
        wgs.max(1),
        4,
        iters,
        vec![
            // A and B tile fragments: reused across work-groups (shared
            // sweep), captured only by the shared L2.
            Op::Load { pattern: 0 },
            Op::Load { pattern: 1 },
            Op::WaitCnt { max: 8 },
            Op::Lds {
                cycles: shape.lds_per_tile,
            },
            Op::Valu {
                count: shape.valu_per_tile,
            },
            // The C tile streams out once.
            Op::Store { pattern: 2 },
        ],
        vec![
            PatternSpec {
                region: a,
                elem_bytes: shape.elem_bytes,
                kind: PatternKind::SharedSweep {
                    phase_bytes: a.bytes / 16,
                },
                seq_stride_bytes: 0,
            },
            PatternSpec {
                region: b,
                elem_bytes: shape.elem_bytes,
                kind: PatternKind::SharedSweep {
                    phase_bytes: b.bytes / 8,
                },
                seq_stride_bytes: 0,
            },
            PatternSpec {
                region: c,
                elem_bytes: shape.elem_bytes,
                kind: PatternKind::Stream,
                seq_stride_bytes: 0,
            },
        ],
    );
    Workload {
        name: name.to_string(),
        category: Category::Insensitive,
        launches: vec![k],
        footprint: alloc.allocated(),
    }
}

/// Single-precision GEMM. Paper: 4Kx128x4K, 68 MB, 1 kernel.
pub(crate) fn sgemm(cfg: &SuiteConfig, index: u64) -> Workload {
    gemm(
        "SGEMM",
        index,
        cfg,
        &GemmShape {
            elem_bytes: 4,
            valu_per_tile: 128,
            lds_per_tile: 16,
        },
    )
}

/// Double-precision GEMM. Paper: 4Kx128x4K, 132 MB, 1 kernel. Twice the
/// bytes per element and a half-rate FMA pipeline (modeled as extra
/// issue occupancy that contributes no vector ops).
pub(crate) fn dgemm(cfg: &SuiteConfig, index: u64) -> Workload {
    gemm(
        "DGEMM",
        index,
        cfg,
        &GemmShape {
            elem_bytes: 8,
            valu_per_tile: 128,
            lds_per_tile: 528, // 16 LDS + the half-rate f64 penalty cycles
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgemm_footprint_doubles_sgemm() {
        let cfg = SuiteConfig::paper();
        let s = sgemm(&cfg, 1).footprint;
        let d = dgemm(&cfg, 0).footprint;
        assert_eq!(d, s * 2);
    }

    #[test]
    fn gemm_is_compute_heavy() {
        let w = sgemm(&SuiteConfig::paper(), 1);
        let valu_ops = w.launches[0].program.valu_lane_ops();
        let mem_insts = w.launches[0]
            .program
            .body
            .iter()
            .filter(|o| matches!(o, Op::Load { .. } | Op::Store { .. }))
            .count();
        assert!(valu_ops > 0);
        assert!(mem_insts <= 3);
    }

    #[test]
    fn shared_matrices_fit_the_l2() {
        // A + B must fit the 4 MB L2 for the sweep reuse to be capturable.
        let cfg = SuiteConfig::paper();
        let w = sgemm(&cfg, 1);
        let c_bytes = 1024u64 * 1024 * 4;
        let ab = w.footprint - c_bytes;
        assert!(ab <= 4 * 1024 * 1024, "A+B = {ab}");
    }
}
