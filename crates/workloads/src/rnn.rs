//! DeepBench / MIOpen-benchmark recurrent networks: LSTM and GRU, forward
//! and forward+backward (batch 1, sequence length 16, hidden size 128 —
//! the English-Vietnamese translation configuration the paper uses).
//!
//! These are the paper's many-kernel latency-bound applications: 150
//! launches (forward) / 363 launches (forward+backward) of 4 / 6 unique
//! templates, with a 0.38–0.48 MB footprint. The input-weight GEMM is
//! batched over all timesteps (weights reused 16x within one kernel); the
//! recurrent GEMVs run per step with tiny grids, so execution is dominated
//! by memory latency and launch overhead — caching shortens the critical
//! path even where bandwidth is ample.

use crate::patterns::{PatternKind, PatternSpec, Region};
use crate::{kernel, Category, RegionAlloc, SuiteConfig, Workload};
use miopt_gpu::{KernelDesc, Op};
use std::sync::Arc;

const SEQ_LEN: u32 = 16;

/// Configuration of a DeepBench-style RNN workload, mirroring the knobs
/// the paper calls out ("sequence lengths, hidden layer sizes, and batch
/// sizes"). The Table 2 entries use [`RnnConfig::paper`]; the
/// `rnn_sweep` example explores the rest of the space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnnConfig {
    /// Gate count (4 for LSTM, 3 for GRU).
    pub gates: u64,
    /// Hidden layer size (paper: 128).
    pub hidden: u64,
    /// Sequence length (paper: 16).
    pub seq_len: u32,
    /// Whether the backward pass runs too.
    pub backward: bool,
}

impl RnnConfig {
    /// The paper's configuration: hidden 128, sequence length 16,
    /// batch 1 (the English-Vietnamese translation RNN).
    #[must_use]
    pub fn paper(gates: u64, backward: bool) -> RnnConfig {
        RnnConfig {
            gates,
            hidden: 128,
            seq_len: 16,
            backward,
        }
    }
}

/// Builds a custom-size LSTM/GRU workload (see [`RnnConfig`]). Kernel
/// counts scale with the sequence length exactly as the Table 2 entries
/// do at length 16.
#[must_use]
pub fn rnn_with_config(name: &str, index: u64, config: &RnnConfig) -> Workload {
    rnn_impl(name, index, config)
}

/// The input-weight GEMM, batched across all timesteps: every work-group
/// sweeps the whole `W` (reuse across distant work items).
fn gemm_x(tid: u16, w: Region, x: Region, gates: u64) -> Arc<KernelDesc> {
    let wgs = (SEQ_LEN * gates as u32).max(8);
    // (the batched input GEMM's parallelism scales with gates x seq.)
    let iters = (w.bytes / (64 * 4)).max(1) as u32;
    kernel(
        "rnn_gemm_x",
        tid,
        wgs,
        1,
        iters,
        vec![
            Op::Load { pattern: 0 },
            Op::Load { pattern: 1 },
            Op::WaitCnt { max: 2 },
            Op::Valu { count: 4 },
        ],
        vec![
            PatternSpec {
                region: w,
                elem_bytes: 4,
                kind: PatternKind::SharedSweep {
                    phase_bytes: w.bytes / 16,
                },
                seq_stride_bytes: 0,
            },
            PatternSpec {
                region: x,
                elem_bytes: 4,
                kind: PatternKind::SharedSweep { phase_bytes: 512 },
                seq_stride_bytes: 0,
            },
        ],
    )
}

/// The per-timestep recurrent GEMV: streams the recurrent weights once
/// with a tiny grid (latency bound, little reuse).
fn gemv_h(tid: u16, wh: Region, h: Region) -> Arc<KernelDesc> {
    let wgs = 8;
    let iters = (wh.bytes / (64 * 4 * wgs as u64)).max(1) as u32;
    kernel(
        "rnn_gemv_h",
        tid,
        wgs,
        1,
        iters,
        vec![
            Op::Load { pattern: 0 },
            Op::Load { pattern: 1 },
            Op::WaitCnt { max: 1 },
            Op::Valu { count: 4 },
        ],
        vec![
            PatternSpec {
                region: wh,
                elem_bytes: 4,
                kind: PatternKind::Stream,
                seq_stride_bytes: 0,
            },
            PatternSpec {
                region: h,
                elem_bytes: 4,
                kind: PatternKind::SharedSweep { phase_bytes: 256 },
                seq_stride_bytes: 0,
            },
        ],
    )
}

/// Per-timestep elementwise gate math over the tiny state vectors.
fn elementwise(tid: u16, name: &str, state: Region, loads: usize) -> Arc<KernelDesc> {
    let mut body = Vec::new();
    let mut pats = Vec::new();
    for l in 0..loads {
        body.push(Op::Load {
            pattern: pats.len() as u16,
        });
        pats.push(PatternSpec {
            region: state,
            elem_bytes: 4,
            kind: if l == 0 {
                PatternKind::Stream
            } else {
                PatternKind::LaggedStream {
                    lag_bytes: 2048 * l as u64,
                }
            },
            // Each timestep works on its own slice of the state.
            seq_stride_bytes: 2048,
        });
    }
    body.push(Op::WaitCnt { max: 0 });
    body.push(Op::Valu { count: 2 });
    body.push(Op::Store {
        pattern: pats.len() as u16,
    });
    pats.push(PatternSpec {
        region: state,
        elem_bytes: 4,
        kind: PatternKind::LaggedStream { lag_bytes: 8192 },
        seq_stride_bytes: 2048,
    });
    kernel(name, tid, 2, 1, 4, body, pats)
}

/// The time-batched backward GEMM accumulating `dW`: sweeps activations
/// and weights with high intra-kernel reuse and revisited gradient stores.
fn gemm_bw(tid: u16, w: Region, acts: Region, dw: Region) -> Arc<KernelDesc> {
    let wgs = 32;
    let iters = (w.bytes / (64 * 4)).max(1) as u32;
    kernel(
        "rnn_gemm_bw",
        tid,
        wgs,
        1,
        iters,
        vec![
            Op::Load { pattern: 0 },
            Op::Load { pattern: 1 },
            Op::WaitCnt { max: 2 },
            Op::Valu { count: 4 },
            Op::Store { pattern: 2 },
        ],
        vec![
            PatternSpec {
                region: w,
                elem_bytes: 4,
                kind: PatternKind::SharedSweep {
                    phase_bytes: w.bytes / 8,
                },
                seq_stride_bytes: 0,
            },
            PatternSpec {
                region: acts,
                elem_bytes: 4,
                kind: PatternKind::SharedSweep {
                    phase_bytes: acts.bytes / 8,
                },
                seq_stride_bytes: 0,
            },
            PatternSpec {
                region: dw,
                elem_bytes: 4,
                kind: PatternKind::Revisit { times: 4 },
                seq_stride_bytes: 0,
            },
        ],
    )
}

struct RnnShape {
    /// Gate count (4 for LSTM, 3 for GRU).
    gates: u64,
    /// Whether the backward pass is run too.
    backward: bool,
}

fn rnn(name: &str, index: u64, _cfg: &SuiteConfig, shape: &RnnShape) -> Workload {
    rnn_impl(name, index, &RnnConfig::paper(shape.gates, shape.backward))
}

fn rnn_impl(name: &str, index: u64, config: &RnnConfig) -> Workload {
    let mut alloc = RegionAlloc::for_workload(index);
    let hidden = config.hidden;
    let seq_len = config.seq_len;
    // W_x and W_h are gates x hidden x hidden floats.
    let w_bytes = config.gates * hidden * hidden * 4;
    let wx = alloc.region(w_bytes);
    let wh = alloc.region(w_bytes);
    let state = alloc.region(64 * 1024);
    let base = (index * 8) as u16;

    let k_gemm_x = gemm_x(base, wx, state, config.gates);
    let k_gemv_h = gemv_h(base + 1, wh, state);
    let k_ew_gate = elementwise(base + 2, "rnn_ew_gate", state, 2);
    let k_ew_state = elementwise(base + 3, "rnn_ew_state", state, 1);

    // Forward: 1 batched input GEMM + per step (1 recurrent GEMV + gate +
    // state elementwise x ~3) = 150 launches of 4 templates at the
    // paper's sequence length of 16.
    let mut launches: Vec<Arc<KernelDesc>> = vec![Arc::clone(&k_gemm_x)];
    for _ in 0..seq_len {
        launches.push(Arc::clone(&k_gemv_h));
        launches.push(Arc::clone(&k_ew_gate));
        for _ in 0..6 {
            launches.push(Arc::clone(&k_ew_state));
        }
        launches.push(Arc::clone(&k_ew_gate));
    }
    // 1 + 16 * 9 = 145 at the paper's length; pad with state updates to
    // the paper's 150 (proportionally at other lengths).
    let fw_target = 1 + seq_len as usize * 9 + 5;
    while launches.len() < fw_target {
        launches.push(Arc::clone(&k_ew_state));
    }

    if config.backward {
        let dw = alloc.region(w_bytes);
        let k_gemm_bw = gemm_bw(base + 4, wx, state, dw);
        let k_ew_bw = elementwise(base + 5, "rnn_ew_bw", state, 3);
        // Backward: per step ~12 elementwise/GEMV launches + the batched
        // dW GEMM at the end: 363 total of 6 templates at length 16.
        for _ in 0..seq_len {
            launches.push(Arc::clone(&k_gemv_h));
            for _ in 0..11 {
                launches.push(Arc::clone(&k_ew_bw));
            }
        }
        launches.push(Arc::clone(&k_gemm_bw));
        let bw_target = fw_target + seq_len as usize * 12 + 21;
        while launches.len() < bw_target {
            launches.push(Arc::clone(&k_ew_bw));
        }
    }

    Workload {
        name: name.to_string(),
        category: Category::ReuseSensitive,
        launches,
        footprint: alloc.allocated(),
    }
}

/// Forward LSTM (batch 1, seq 16, hidden 128). Paper: 4/150 kernels,
/// 0.38 MB.
pub(crate) fn fw_lstm(cfg: &SuiteConfig, index: u64) -> Workload {
    rnn(
        "FwLSTM",
        index,
        cfg,
        &RnnShape {
            gates: 4,
            backward: false,
        },
    )
}

/// Forward GRU. Paper: 4/150 kernels.
pub(crate) fn fw_gru(cfg: &SuiteConfig, index: u64) -> Workload {
    rnn(
        "FwGRU",
        index,
        cfg,
        &RnnShape {
            gates: 3,
            backward: false,
        },
    )
}

/// Forward+backward LSTM. Paper: 6/363 kernels, 0.48 MB.
pub(crate) fn fwbw_lstm(cfg: &SuiteConfig, index: u64) -> Workload {
    rnn(
        "FwBwLSTM",
        index,
        cfg,
        &RnnShape {
            gates: 4,
            backward: true,
        },
    )
}

/// Forward+backward GRU. Paper: 6/363 kernels.
pub(crate) fn fwbw_gru(cfg: &SuiteConfig, index: u64) -> Workload {
    rnn(
        "FwBwGRU",
        index,
        cfg,
        &RnnShape {
            gates: 3,
            backward: true,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_counts_match_table_2() {
        let cfg = SuiteConfig::paper();
        assert_eq!(fw_lstm(&cfg, 9).total_kernels(), 150);
        assert_eq!(fw_gru(&cfg, 8).total_kernels(), 150);
        assert_eq!(fwbw_lstm(&cfg, 11).total_kernels(), 363);
        assert_eq!(fwbw_gru(&cfg, 10).total_kernels(), 363);
    }

    #[test]
    fn gru_is_smaller_than_lstm() {
        let cfg = SuiteConfig::paper();
        assert!(fw_gru(&cfg, 8).footprint < fw_lstm(&cfg, 9).footprint);
    }

    #[test]
    fn repeated_launches_share_templates_and_pcs() {
        let w = fw_lstm(&SuiteConfig::paper(), 9);
        let a = &w.launches[1];
        let b = &w.launches[10];
        assert_eq!(a.template_id, b.template_id);
        assert_eq!(a.pc_of(0), b.pc_of(0));
    }

    #[test]
    fn grids_are_tiny() {
        let w = fw_lstm(&SuiteConfig::paper(), 9);
        for k in &w.launches {
            assert!(
                k.total_wavefronts() <= 64,
                "{}: batch-1 RNNs are small",
                k.name
            );
        }
    }
}
