//! Pooling layers (DNNMark).
//!
//! Forward pooling reads overlapping 3x3 stride-2 windows: the horizontal
//! overlap coalesces within a wavefront, but the vertical overlap (a row
//! re-read one output-row later) needs a cache. Backward pooling scatters
//! gradients into a 4x larger array with revisits that L2 write coalescing
//! collapses — with markedly unequal load/store counts, as the paper
//! notes.

use crate::patterns::{PatternKind, PatternSpec};
use crate::{grid, kernel, Category, RegionAlloc, SuiteConfig, Workload};
use miopt_gpu::Op;

/// Forward max pooling. Paper: batch 256, 480 MB footprint.
pub(crate) fn fw_pool(cfg: &SuiteConfig, index: u64) -> Workload {
    let mut alloc = RegionAlloc::for_workload(index);
    let in_bytes = cfg.scaled(192 * 1024 * 1024);
    let out_bytes = in_bytes / 4;
    let x = alloc.region(in_bytes);
    let y = alloc.region(out_bytes);
    let out_elems = out_bytes / 4;
    let (wgs, iters) = grid(out_elems, 4, 640);
    // One output row of windows separates the overlapping input row: a
    // wavefront-local reuse distance that the resident-wavefront count
    // pushes past the L1s but the shared L2 holds.
    let lag = 2048;
    let k = kernel(
        "fw_pool_max",
        (index * 8) as u16,
        wgs,
        4,
        iters,
        vec![
            // The two fresh window rows: 16 B per lane covers the 4 input
            // elements per output.
            Op::Load { pattern: 0 },
            // The re-read row shared with the previous output row.
            Op::Load { pattern: 1 },
            Op::WaitCnt { max: 24 },
            Op::Valu { count: 2 },
            Op::Store { pattern: 2 },
        ],
        vec![
            PatternSpec {
                region: x,
                elem_bytes: 16,
                kind: PatternKind::Stream,
                seq_stride_bytes: 0,
            },
            PatternSpec {
                region: x,
                elem_bytes: 8,
                kind: PatternKind::ChunkReread { lag_bytes: lag },
                seq_stride_bytes: 0,
            },
            PatternSpec::stream(y),
        ],
    );
    Workload {
        name: "FwPool".to_string(),
        category: Category::ReuseSensitive,
        launches: vec![k],
        footprint: alloc.allocated(),
    }
}

/// Backward max pooling. Paper: batch 256, 252 MB footprint. Loads the
/// small output gradient, scatters into the large input gradient with
/// overlapping revisited lines (write-coalescing potential at the L2).
pub(crate) fn bw_pool(cfg: &SuiteConfig, index: u64) -> Workload {
    let mut alloc = RegionAlloc::for_workload(index);
    let dy_bytes = cfg.scaled(32 * 1024 * 1024);
    let dx_bytes = dy_bytes * 4;
    let dy = alloc.region(dy_bytes);
    let mask = alloc.region(dx_bytes);
    let dx = alloc.region(dx_bytes);
    let dy_elems = dy_bytes / 4;
    let (wgs, iters) = grid(dy_elems, 4, 640);
    let k = kernel(
        "bw_pool_max",
        (index * 8) as u16,
        wgs,
        4,
        iters,
        vec![
            // The output gradient plus the argmax mask over the full
            // input extent.
            Op::Load { pattern: 0 },
            Op::Load { pattern: 1 },
            Op::WaitCnt { max: 24 },
            Op::Valu { count: 2 },
            // Scatter: each 16 B-per-lane store covers the 4x larger dx,
            // revisiting each position twice (window overlap).
            Op::Store { pattern: 2 },
            Op::Store { pattern: 2 },
        ],
        vec![
            PatternSpec::stream(dy),
            PatternSpec {
                region: mask,
                elem_bytes: 16,
                kind: PatternKind::Stream,
                seq_stride_bytes: 0,
            },
            PatternSpec {
                region: dx,
                elem_bytes: 16,
                kind: PatternKind::Revisit { times: 2 },
                seq_stride_bytes: 0,
            },
        ],
    );
    Workload {
        name: "BwPool".to_string(),
        category: Category::ReuseSensitive,
        launches: vec![k],
        footprint: alloc.allocated(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fw_pool_output_is_quarter_of_input() {
        let w = fw_pool(&SuiteConfig::quick(), 4);
        // footprint = in + in/4
        let in_bytes = w.footprint * 4 / 5;
        assert!(in_bytes > 0);
        assert!(w.footprint - in_bytes <= in_bytes / 4 + 8192);
    }

    #[test]
    fn bw_pool_store_traffic_outweighs_loads() {
        // Unequal load/store counts (paper Section II.B): the dx scatter
        // (two 16 B-per-lane stores = 32 lines/iter) outweighs the dy +
        // mask loads (4 + 16 lines/iter).
        let w = bw_pool(&SuiteConfig::quick(), 7);
        let body = &w.launches[0].program.body;
        let stores = body
            .iter()
            .filter(|o| matches!(o, Op::Store { .. }))
            .count();
        assert_eq!(stores, 2);
        let store_lines_per_iter = 2 * (64 * 16) / 64;
        let load_lines_per_iter = (64 * 4) / 64 + (64 * 16) / 64;
        assert!(store_lines_per_iter > load_lines_per_iter);
    }
}
