//! The fully connected layer (DNNMark FwFc, batch 512, 148 MB in the
//! paper).
//!
//! The paper's archetype of *high-connectivity* reuse: the weight matrix
//! is re-swept by work items far apart in the grid, so only a cache can
//! capture the reuse (up to 93% memory-demand reduction, 29% speedup with
//! read caching).

use crate::patterns::{PatternKind, PatternSpec};
use crate::{kernel, Category, RegionAlloc, SuiteConfig, Workload};
use miopt_gpu::Op;

/// Forward fully connected layer.
pub(crate) fn fw_fc(cfg: &SuiteConfig, index: u64) -> Workload {
    let mut alloc = RegionAlloc::for_workload(index);
    // The weight working set must fit the L2 for cached sweeps to hit.
    let w_bytes = cfg.scaled(32 * 1024 * 1024).min(2 * 1024 * 1024);
    let x_bytes = 256 * 1024;
    let w = alloc.region(w_bytes);
    let x = alloc.region(x_bytes);
    let y = alloc.region(x_bytes);

    // 128 batch tiles; each sweeps a 1/9 slice of the weight matrix at a
    // per-wg phase, so together they re-read W ~14x (the paper reports up
    // to 93% of that traffic disappearing with read caching).
    let wgs = 256;
    let wfs = 2;
    let iters = (w_bytes / 18 / (64 * 4 * 8)).max(8) as u32;
    let k = kernel(
        "fw_fc_gemv",
        (index * 8) as u16,
        wgs,
        wfs,
        iters,
        {
            // Eight weight/input rounds per output store: FC output traffic
            // is a small fraction of its weight traffic.
            let mut body = Vec::new();
            for _ in 0..8 {
                body.push(Op::Load { pattern: 0 }); // weight sweep
                body.push(Op::Load { pattern: 1 }); // input (broadcast)
                body.push(Op::WaitCnt { max: 8 });
                body.push(Op::Valu { count: 8 });
            }
            body.push(Op::Store { pattern: 2 });
            body
        },
        vec![
            PatternSpec {
                region: w,
                elem_bytes: 4,
                kind: PatternKind::SharedSweep {
                    phase_bytes: w.bytes / u64::from(wgs),
                },
                seq_stride_bytes: 0,
            },
            PatternSpec {
                region: x,
                elem_bytes: 4,
                kind: PatternKind::SharedSweep { phase_bytes: 4096 },
                seq_stride_bytes: 0,
            },
            PatternSpec::stream(y),
        ],
    );
    Workload {
        name: "FwFc".to_string(),
        category: Category::ReuseSensitive,
        launches: vec![k],
        footprint: alloc.allocated(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_fit_the_l2() {
        let w = fw_fc(&SuiteConfig::paper(), 13);
        assert!(w.footprint <= 4 * 1024 * 1024);
    }

    #[test]
    fn many_wgs_share_the_weight_sweep() {
        let w = fw_fc(&SuiteConfig::paper(), 13);
        assert!(w.launches[0].wgs >= 64, "distant work items must share W");
    }
}
