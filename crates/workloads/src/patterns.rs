//! Parametric address-pattern primitives.
//!
//! Every Table 2 benchmark is assembled from a handful of layer-level
//! memory patterns. Each pattern describes how a memory instruction's lane
//! addresses advance with the wavefront's position in the grid and its loop
//! iteration; together with the cache geometry this determines the reuse
//! the caches can (or cannot) capture — the property the paper's
//! characterization hinges on.

use miopt_engine::Addr;
use miopt_gpu::{AccessCtx, AddrGen};

/// A byte range of the unified address space owned by one array
/// (activations, weights, gradients, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte.
    pub base: u64,
    /// Size in bytes.
    pub bytes: u64,
}

impl Region {
    /// Creates a region.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    #[must_use]
    pub fn new(base: u64, bytes: u64) -> Region {
        assert!(bytes > 0, "region must be nonempty");
        Region { base, bytes }
    }

    fn wrap(&self, offset: u64) -> Addr {
        Addr(self.base + offset % self.bytes)
    }
}

/// How a pattern's position evolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// Dense partitioned streaming: each wavefront walks its own
    /// contiguous chunk of the region, one 64-lane block per iteration.
    /// No reuse (the activation-layer pattern).
    Stream,
    /// Like [`PatternKind::Stream`] but trailing the stream position by
    /// `lag_bytes`: re-reads data touched `lag_bytes` earlier. The reuse
    /// is captured by any cache level whose capacity exceeds the lag
    /// (the multi-pass normalization / softmax pattern).
    LaggedStream {
        /// Reuse distance in bytes.
        lag_bytes: u64,
    },
    /// Like [`PatternKind::Stream`] but the position advances only every
    /// `times` iterations: the same lines are touched `times` times in a
    /// row. For stores this is the overlapping-window scatter of backward
    /// pooling, collapsed by L2 write coalescing.
    Revisit {
        /// Consecutive touches per position.
        times: u32,
    },
    /// Streaming with an additive plane offset: `pos + plane * plane_bytes`
    /// (the cross-channel window of LRN).
    Planes {
        /// Distance between planes in bytes.
        plane_bytes: u64,
        /// Which plane this instruction reads.
        plane: u32,
    },
    /// Every work-group cyclically sweeps the *whole* region, starting at
    /// a per-work-group phase: reuse between distant work items that only
    /// a shared cache can capture (the weight-tile pattern of FC/GEMM).
    SharedSweep {
        /// Phase offset between consecutive work-groups, in bytes.
        phase_bytes: u64,
    },
    /// Re-reads the wavefront's *own* chunk `lag_bytes` behind its stream
    /// position (circularly within the chunk): the two-pass pattern of
    /// normalization layers and the vertical window overlap of pooling.
    /// Unlike [`PatternKind::LaggedStream`], the reuse distance is
    /// temporal within one wavefront — many concurrent wavefronts push the
    /// aggregate reuse window past the L1s while the shared L2 holds it.
    ChunkReread {
        /// Reuse distance within the wavefront's chunk, in bytes.
        lag_bytes: u64,
    },
}

/// One memory instruction's addressing: a region, an element size, and a
/// pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternSpec {
    /// The array accessed.
    pub region: Region,
    /// Bytes per lane element (4 for float32, 8 for float64).
    pub elem_bytes: u32,
    /// Address evolution.
    pub kind: PatternKind,
    /// Bytes added per kernel launch sequence number (0 for weights that
    /// every launch re-reads; nonzero for per-timestep activations).
    pub seq_stride_bytes: u64,
}

impl PatternSpec {
    /// Dense float32 stream over `region`.
    #[must_use]
    pub fn stream(region: Region) -> PatternSpec {
        PatternSpec {
            region,
            elem_bytes: 4,
            kind: PatternKind::Stream,
            seq_stride_bytes: 0,
        }
    }
}

/// The address generator backing one kernel: a list of [`PatternSpec`]s
/// indexed by the program's pattern slots, plus the grid geometry needed to
/// linearize wavefront positions.
#[derive(Debug, Clone)]
pub struct LayerGen {
    patterns: Vec<PatternSpec>,
    wfs_per_wg: u32,
    iters: u32,
}

impl LayerGen {
    /// Builds a generator.
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty or the geometry is degenerate.
    #[must_use]
    pub fn new(patterns: Vec<PatternSpec>, wfs_per_wg: u32, iters: u32) -> LayerGen {
        assert!(!patterns.is_empty(), "need at least one pattern");
        assert!(wfs_per_wg > 0 && iters > 0, "degenerate geometry");
        LayerGen {
            patterns,
            wfs_per_wg,
            iters,
        }
    }

    /// The patterns (for footprint reporting).
    #[must_use]
    pub fn patterns(&self) -> &[PatternSpec] {
        &self.patterns
    }

    fn position(&self, spec: &PatternSpec, ctx: &AccessCtx) -> u64 {
        let lin_wf = u64::from(ctx.wg) * u64::from(self.wfs_per_wg) + u64::from(ctx.wf);
        let eb = u64::from(spec.elem_bytes);
        let seq = u64::from(ctx.kernel_seq) * spec.seq_stride_bytes;
        match spec.kind {
            PatternKind::Stream => {
                let elem = (lin_wf * u64::from(self.iters) + u64::from(ctx.iter)) * 64
                    + u64::from(ctx.lane);
                elem * eb + seq
            }
            PatternKind::LaggedStream { lag_bytes } => {
                let elem = (lin_wf * u64::from(self.iters) + u64::from(ctx.iter)) * 64
                    + u64::from(ctx.lane);
                (elem * eb + seq + spec.region.bytes).saturating_sub(lag_bytes)
            }
            PatternKind::Revisit { times } => {
                let eff_iter = u64::from(ctx.iter) / u64::from(times.max(1));
                let eff_iters = u64::from(self.iters) / u64::from(times.max(1));
                let elem = (lin_wf * eff_iters.max(1) + eff_iter) * 64 + u64::from(ctx.lane);
                elem * eb + seq
            }
            PatternKind::Planes { plane_bytes, plane } => {
                let elem = (lin_wf * u64::from(self.iters) + u64::from(ctx.iter)) * 64
                    + u64::from(ctx.lane);
                elem * eb + u64::from(plane) * plane_bytes + seq
            }
            PatternKind::SharedSweep { phase_bytes } => {
                let elem = u64::from(ctx.iter) * 64 + u64::from(ctx.lane);
                elem * eb + u64::from(ctx.wg) * phase_bytes + seq
            }
            PatternKind::ChunkReread { lag_bytes } => {
                let chunk_bytes = u64::from(self.iters) * 64 * eb;
                let chunk_start = lin_wf * chunk_bytes;
                let own = (u64::from(ctx.iter) * 64 + u64::from(ctx.lane)) * eb;
                let lag = lag_bytes.min(chunk_bytes.saturating_sub(1)).max(1);
                chunk_start + (own + chunk_bytes - lag) % chunk_bytes + seq
            }
        }
    }
}

impl AddrGen for LayerGen {
    fn lane_addr(&self, ctx: &AccessCtx) -> Option<Addr> {
        let spec = self
            .patterns
            .get(usize::from(ctx.pattern))
            .unwrap_or_else(|| panic!("pattern slot {} out of range", ctx.pattern));
        Some(spec.region.wrap(self.position(spec, ctx)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(wg: u32, wf: u32, lane: u32, iter: u32, pattern: u16) -> AccessCtx {
        AccessCtx {
            kernel_seq: 0,
            wg,
            wf,
            lane,
            iter,
            pattern,
        }
    }

    fn gen_of(kind: PatternKind, region_bytes: u64, iters: u32) -> LayerGen {
        LayerGen::new(
            vec![PatternSpec {
                region: Region::new(0, region_bytes),
                elem_bytes: 4,
                kind,
                seq_stride_bytes: 0,
            }],
            2,
            iters,
        )
    }

    #[test]
    fn stream_is_dense_and_partitioned() {
        let g = gen_of(PatternKind::Stream, 1 << 20, 4);
        // Lanes are contiguous within an iteration.
        let a0 = g.lane_addr(&ctx(0, 0, 0, 0, 0)).unwrap();
        let a1 = g.lane_addr(&ctx(0, 0, 1, 0, 0)).unwrap();
        assert_eq!(a1.0 - a0.0, 4);
        // Iterations advance by a full 64-lane block.
        let b = g.lane_addr(&ctx(0, 0, 0, 1, 0)).unwrap();
        assert_eq!(b.0 - a0.0, 256);
        // Different wavefronts own disjoint chunks.
        let c = g.lane_addr(&ctx(0, 1, 0, 0, 0)).unwrap();
        assert_eq!(c.0 - a0.0, 4 * 64 * 4); // iters * 64 lanes * 4 B
    }

    #[test]
    fn lagged_stream_trails_by_lag() {
        let lag = 1024;
        let fresh = gen_of(PatternKind::Stream, 1 << 20, 4);
        let lagged = gen_of(PatternKind::LaggedStream { lag_bytes: lag }, 1 << 20, 4);
        let f = fresh.lane_addr(&ctx(1, 1, 7, 3, 0)).unwrap();
        let l = lagged.lane_addr(&ctx(1, 1, 7, 3, 0)).unwrap();
        // Same position minus the lag (modulo region wrap).
        let region = 1u64 << 20;
        assert_eq!(l.0, (f.0 + region - lag) % region);
    }

    #[test]
    fn revisit_repeats_positions() {
        let g = gen_of(PatternKind::Revisit { times: 3 }, 1 << 20, 9);
        let a = g.lane_addr(&ctx(0, 0, 5, 0, 0)).unwrap();
        let b = g.lane_addr(&ctx(0, 0, 5, 1, 0)).unwrap();
        let c = g.lane_addr(&ctx(0, 0, 5, 2, 0)).unwrap();
        let d = g.lane_addr(&ctx(0, 0, 5, 3, 0)).unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_ne!(c, d, "position advances after `times` touches");
    }

    #[test]
    fn planes_offset_by_plane_stride() {
        let near = gen_of(
            PatternKind::Planes {
                plane_bytes: 65536,
                plane: 0,
            },
            1 << 20,
            4,
        );
        let far = gen_of(
            PatternKind::Planes {
                plane_bytes: 65536,
                plane: 2,
            },
            1 << 20,
            4,
        );
        let a = near.lane_addr(&ctx(0, 0, 0, 0, 0)).unwrap();
        let b = far.lane_addr(&ctx(0, 0, 0, 0, 0)).unwrap();
        assert_eq!(b.0 - a.0, 131072);
    }

    #[test]
    fn shared_sweep_is_wg_phase_shifted() {
        let g = gen_of(PatternKind::SharedSweep { phase_bytes: 4096 }, 1 << 16, 4);
        let wg0 = g.lane_addr(&ctx(0, 0, 0, 2, 0)).unwrap();
        let wg1 = g.lane_addr(&ctx(1, 0, 0, 2, 0)).unwrap();
        assert_eq!((wg1.0 - wg0.0) % (1 << 16), 4096);
        // Wavefront index does not matter: all wfs of a wg share the sweep.
        let wf1 = g.lane_addr(&ctx(0, 1, 0, 2, 0)).unwrap();
        assert_eq!(wg0, wf1);
    }

    #[test]
    fn addresses_stay_inside_region() {
        let region = 4096;
        for kind in [
            PatternKind::Stream,
            PatternKind::LaggedStream { lag_bytes: 100 },
            PatternKind::Revisit { times: 2 },
            PatternKind::Planes {
                plane_bytes: 999,
                plane: 3,
            },
            PatternKind::SharedSweep { phase_bytes: 1000 },
        ] {
            let g = gen_of(kind, region, 64);
            for iter in 0..64 {
                for lane in [0u32, 13, 63] {
                    let a = g.lane_addr(&ctx(7, 1, lane, iter, 0)).unwrap();
                    assert!(a.0 < region, "{kind:?} escaped region: {a}");
                }
            }
        }
    }

    #[test]
    fn seq_stride_moves_with_launch() {
        let g = LayerGen::new(
            vec![PatternSpec {
                region: Region::new(0, 1 << 20),
                elem_bytes: 4,
                kind: PatternKind::Stream,
                seq_stride_bytes: 8192,
            }],
            1,
            1,
        );
        let mut c = ctx(0, 0, 0, 0, 0);
        let a = g.lane_addr(&c).unwrap();
        c.kernel_seq = 3;
        let b = g.lane_addr(&c).unwrap();
        assert_eq!(b.0 - a.0, 3 * 8192);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unknown_pattern_slot_panics() {
        let g = gen_of(PatternKind::Stream, 4096, 1);
        let _ = g.lane_addr(&ctx(0, 0, 0, 0, 9));
    }
}
