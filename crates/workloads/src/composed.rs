//! The Composed Model (DNNMark CM): convolution, normalization, pooling
//! and activation layers chained into a 130-kernel network over a small
//! (12.1 MB) footprint.
//!
//! The paper classifies CM as memory-insensitive: caching improves its
//! reuse by 69% but performance is unaffected because memory demand is
//! exceptionally low (compute and launch overhead dominate).

use crate::patterns::{PatternKind, PatternSpec, Region};
use crate::{kernel, Category, RegionAlloc, SuiteConfig, Workload};
use miopt_gpu::{KernelDesc, Op};
use std::sync::Arc;

fn conv(tid: u16, weights: Region, act: Region) -> Arc<KernelDesc> {
    kernel(
        "cm_conv",
        tid,
        64,
        4,
        16,
        vec![
            Op::Load { pattern: 0 },
            Op::Load { pattern: 1 },
            Op::WaitCnt { max: 2 },
            Op::Lds { cycles: 8 },
            Op::Valu { count: 64 },
            Op::Store { pattern: 2 },
        ],
        vec![
            PatternSpec {
                region: weights,
                elem_bytes: 4,
                kind: PatternKind::SharedSweep {
                    phase_bytes: weights.bytes / 16,
                },
                seq_stride_bytes: 0,
            },
            PatternSpec {
                region: act,
                elem_bytes: 4,
                kind: PatternKind::SharedSweep {
                    phase_bytes: act.bytes / 32,
                },
                seq_stride_bytes: 0,
            },
            PatternSpec {
                region: act,
                elem_bytes: 4,
                kind: PatternKind::LaggedStream {
                    lag_bytes: act.bytes / 2,
                },
                seq_stride_bytes: 0,
            },
        ],
    )
}

fn small_layer(tid: u16, name: &str, act: Region, valu: u32) -> Arc<KernelDesc> {
    kernel(
        name,
        tid,
        16,
        2,
        8,
        vec![
            Op::Load { pattern: 0 },
            Op::WaitCnt { max: 4 },
            Op::Valu { count: valu },
            Op::Store { pattern: 1 },
        ],
        vec![
            PatternSpec::stream(act),
            PatternSpec {
                region: act,
                elem_bytes: 4,
                kind: PatternKind::LaggedStream {
                    lag_bytes: act.bytes / 4,
                },
                seq_stride_bytes: 0,
            },
        ],
    )
}

/// The Composed Model. Paper: batch 64, 4/130 kernels, 12.1 MB.
pub(crate) fn cm(cfg: &SuiteConfig, index: u64) -> Workload {
    let mut alloc = RegionAlloc::for_workload(index);
    let weights = alloc.region(cfg.scaled(6 * 1024 * 1024).min(512 * 1024));
    let act = alloc.region(cfg.scaled(6 * 1024 * 1024).min(256 * 1024));
    let base = (index * 8) as u16;
    let k_conv = conv(base, weights, act);
    let k_bn = small_layer(base + 1, "cm_bn", act, 2);
    let k_pool = small_layer(base + 2, "cm_pool", act, 2);
    let k_act = small_layer(base + 3, "cm_act", act, 1);

    // 32 blocks of conv-bn-pool-act, then a classifier tail: 130 total.
    let mut launches = Vec::with_capacity(130);
    for _ in 0..32 {
        launches.push(Arc::clone(&k_conv));
        launches.push(Arc::clone(&k_bn));
        launches.push(Arc::clone(&k_pool));
        launches.push(Arc::clone(&k_act));
    }
    launches.push(Arc::clone(&k_conv));
    launches.push(Arc::clone(&k_act));

    Workload {
        name: "CM".to_string(),
        category: Category::Insensitive,
        launches,
        footprint: alloc.allocated(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cm_has_130_launches_of_4_templates() {
        let w = cm(&SuiteConfig::paper(), 2);
        assert_eq!(w.total_kernels(), 130);
        assert_eq!(w.unique_kernels(), 4);
    }

    #[test]
    fn cm_footprint_is_small() {
        let w = cm(&SuiteConfig::paper(), 2);
        assert!(w.footprint <= 2 * 1024 * 1024);
    }

    #[test]
    fn conv_dominates_compute() {
        let w = cm(&SuiteConfig::paper(), 2);
        let conv_ops = w.launches[0].program.valu_lane_ops();
        let bn_ops = w.launches[1].program.valu_lane_ops();
        assert!(conv_ops > 4 * bn_ops);
    }
}
