//! Softmax layers (DNNMark): tiny classifier outputs (batch 512 x ~10
//! classes, 0.01–0.02 MB) re-read several times per kernel (max, exp/sum,
//! divide). Everything fits in any cache; uncached, every pass pays DRAM
//! latency.

use crate::patterns::{PatternKind, PatternSpec};
use crate::{kernel, Category, RegionAlloc, SuiteConfig, Workload};
use miopt_gpu::Op;

fn soft(name: &str, index: u64, arrays: u64, passes: usize, _cfg: &SuiteConfig) -> Workload {
    let mut alloc = RegionAlloc::for_workload(index);
    // Paper sizes are absolute and tiny; no scaling.
    let bytes = 24 * 1024;
    let x = alloc.region(bytes);
    let extra = (1..arrays).map(|_| alloc.region(bytes)).collect::<Vec<_>>();
    let y = alloc.region(bytes);

    let mut body = Vec::new();
    let mut pats = Vec::new();
    // Pass 0 reads fresh; later passes re-read at growing lags.
    for p in 0..passes {
        body.push(Op::Load {
            pattern: pats.len() as u16,
        });
        pats.push(PatternSpec {
            region: x,
            elem_bytes: 4,
            kind: if p == 0 {
                PatternKind::Stream
            } else {
                PatternKind::LaggedStream {
                    lag_bytes: 4096 * p as u64,
                }
            },
            seq_stride_bytes: 0,
        });
        body.push(Op::WaitCnt { max: 2 });
        body.push(Op::Valu { count: 2 });
    }
    for r in &extra {
        body.push(Op::Load {
            pattern: pats.len() as u16,
        });
        pats.push(PatternSpec::stream(*r));
    }
    body.push(Op::WaitCnt { max: 0 });
    body.push(Op::Store {
        pattern: pats.len() as u16,
    });
    pats.push(PatternSpec::stream(y));

    // Batch 512 rows of ~12 classes: a handful of wavefronts.
    let k = kernel(name, (index * 8) as u16, 8, 1, 12, body, pats);
    Workload {
        name: name.to_string(),
        category: Category::ReuseSensitive,
        launches: vec![k],
        footprint: alloc.allocated(),
    }
}

/// Forward softmax. Paper: batch 512, 0.01 MB.
pub(crate) fn fw_soft(cfg: &SuiteConfig, index: u64) -> Workload {
    let mut w = soft("FwSoft", index, 1, 3, cfg);
    w.name = "FwSoft".to_string();
    w
}

/// Backward softmax. Paper: batch 512, 0.02 MB (reads y and dy).
pub(crate) fn bw_soft(cfg: &SuiteConfig, index: u64) -> Workload {
    let mut w = soft("BwSoft", index, 2, 2, cfg);
    w.name = "BwSoft".to_string();
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprints_are_tiny_and_bw_larger() {
        let cfg = SuiteConfig::paper();
        let f = fw_soft(&cfg, 5).footprint;
        let b = bw_soft(&cfg, 6).footprint;
        assert!(f < 256 * 1024);
        assert!(b > f, "backward reads one extra array");
    }

    #[test]
    fn multiple_passes_reread_the_input() {
        let w = fw_soft(&SuiteConfig::paper(), 5);
        let loads = w.launches[0]
            .program
            .body
            .iter()
            .filter(|o| matches!(o, Op::Load { .. }))
            .count();
        assert!(loads >= 3, "softmax makes several passes");
    }

    #[test]
    fn grid_is_small() {
        let w = fw_soft(&SuiteConfig::paper(), 5);
        assert!(
            w.launches[0].total_wavefronts() <= 16,
            "latency-bound layer"
        );
    }
}
