//! The throughput-sensitive elementwise layers: forward/backward
//! activation and forward LRN (paper Table 2, DNNMark).
//!
//! These layers stream giant arrays with zero reuse and almost no compute;
//! the paper finds that *any* caching hurts them (Figure 6) through cache
//! stalls and DRAM row-locality disruption.

use crate::patterns::{PatternKind, PatternSpec};
use crate::{grid, kernel, Category, RegionAlloc, SuiteConfig, Workload};
use miopt_gpu::Op;

/// Forward activation (ReLU): `y[i] = max(x[i], 0)`.
///
/// Paper: batch 100, 2.4 GB footprint, 1 kernel. One load, one store,
/// one VALU op per element — pure memory throughput.
pub(crate) fn fw_act(cfg: &SuiteConfig, index: u64) -> Workload {
    let mut alloc = RegionAlloc::for_workload(index);
    let bytes = cfg.scaled(600 * 1024 * 1024);
    let x = alloc.region(bytes);
    let y = alloc.region(bytes);
    let elems = bytes / 4;
    let (wgs, iters) = grid(elems, 4, 640);
    let k = kernel(
        "fw_act_relu",
        (index * 8) as u16,
        wgs,
        4,
        iters,
        vec![
            Op::Load { pattern: 0 },
            Op::WaitCnt { max: 24 },
            Op::Valu { count: 1 },
            Op::Store { pattern: 1 },
        ],
        vec![PatternSpec::stream(x), PatternSpec::stream(y)],
    );
    Workload {
        name: "FwAct".to_string(),
        category: Category::ThroughputSensitive,
        launches: vec![k],
        footprint: alloc.allocated(),
    }
}

/// Backward activation: `dx[i] = dy[i] * (x[i] > 0)`.
///
/// Paper: batch 100, 2.4 GB footprint. Two loads per store.
pub(crate) fn bw_act(cfg: &SuiteConfig, index: u64) -> Workload {
    let mut alloc = RegionAlloc::for_workload(index);
    let bytes = cfg.scaled(400 * 1024 * 1024);
    let x = alloc.region(bytes);
    let dy = alloc.region(bytes);
    let dx = alloc.region(bytes);
    let elems = bytes / 4;
    let (wgs, iters) = grid(elems, 4, 640);
    let k = kernel(
        "bw_act_relu",
        (index * 8) as u16,
        wgs,
        4,
        iters,
        vec![
            Op::Load { pattern: 0 },
            Op::Load { pattern: 1 },
            Op::WaitCnt { max: 24 },
            Op::Valu { count: 1 },
            Op::Store { pattern: 2 },
        ],
        vec![
            PatternSpec::stream(x),
            PatternSpec::stream(dy),
            PatternSpec::stream(dx),
        ],
    );
    Workload {
        name: "BwAct".to_string(),
        category: Category::ThroughputSensitive,
        launches: vec![k],
        footprint: alloc.allocated(),
    }
}

/// Forward local response normalization.
///
/// Paper: batch 100, 2.4 GB footprint, throughput sensitive — the
/// cross-channel window is precomputed into a scale array by MIOpen, so
/// the kernel streams the input and the scale with no reuse but a 2:1
/// load:store ratio. FwLRN is the workload most hurt by DRAM row-locality
/// disruption (Section VII.A: allocation bypass recovers it).
pub(crate) fn fw_lrn(cfg: &SuiteConfig, index: u64) -> Workload {
    let mut alloc = RegionAlloc::for_workload(index);
    // Slightly larger arrays than BwAct and heavier per-element math
    // (the powf of the LRN denominator).
    let bytes = cfg.scaled(448 * 1024 * 1024);
    let x = alloc.region(bytes);
    let scale = alloc.region(bytes);
    let y = alloc.region(bytes);
    let elems = bytes / 4;
    let (wgs, iters) = grid(elems, 4, 640);
    let k = kernel(
        "fw_lrn",
        (index * 8) as u16,
        wgs,
        4,
        iters,
        vec![
            Op::Load { pattern: 0 },
            Op::Load { pattern: 1 },
            Op::WaitCnt { max: 24 },
            Op::Valu { count: 4 },
            Op::Store { pattern: 2 },
        ],
        vec![
            PatternSpec::stream(x),
            PatternSpec {
                region: scale,
                elem_bytes: 4,
                kind: PatternKind::Stream,
                seq_stride_bytes: 0,
            },
            PatternSpec::stream(y),
        ],
    );
    Workload {
        name: "FwLRN".to_string(),
        category: Category::ThroughputSensitive,
        launches: vec![k],
        footprint: alloc.allocated(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miopt_gpu::AccessCtx;

    #[test]
    fn fw_act_streams_disjoint_in_and_out() {
        let w = fw_act(&SuiteConfig::quick(), 14);
        let k = &w.launches[0];
        let load = k.gen.lane_addr(&AccessCtx {
            kernel_seq: 0,
            wg: 0,
            wf: 0,
            lane: 0,
            iter: 0,
            pattern: 0,
        });
        let store = k.gen.lane_addr(&AccessCtx {
            kernel_seq: 0,
            wg: 0,
            wf: 0,
            lane: 0,
            iter: 0,
            pattern: 1,
        });
        assert_ne!(load, store);
    }

    #[test]
    fn bw_act_is_two_loads_one_store() {
        let w = bw_act(&SuiteConfig::quick(), 16);
        let body = &w.launches[0].program.body;
        let loads = body.iter().filter(|o| matches!(o, Op::Load { .. })).count();
        let stores = body
            .iter()
            .filter(|o| matches!(o, Op::Store { .. }))
            .count();
        assert_eq!((loads, stores), (2, 1));
    }

    #[test]
    fn footprints_scale_with_divisor() {
        let big = fw_act(&SuiteConfig::paper(), 14).footprint;
        let small = fw_act(&SuiteConfig::quick(), 14).footprint;
        assert!(big > 8 * small);
    }
}
