//! The 17 MI benchmarks of the paper's Table 2, as synthetic workload
//! generators for the `miopt` simulator.
//!
//! Each benchmark is modeled by the properties the caching study depends
//! on — footprint relative to cache capacity, reuse pattern and distance,
//! load/store ratio, arithmetic intensity, kernel count and grid shape —
//! assembled from the layer-level address patterns in [`patterns`]. The
//! numerical content of the kernels is irrelevant to the paper's questions
//! and is not modeled.
//!
//! Paper footprints are scaled down by [`SuiteConfig::footprint_divisor`]
//! (default 16) so runs finish in seconds rather than days; the scaling
//! preserves each footprint's ratio to the 4 MB L2 where that ratio
//! determines behaviour, and keeps the tiny benchmarks (softmax, RNNs) at
//! their natural absolute sizes.
//!
//! # Examples
//!
//! ```
//! use miopt_workloads::{suite, SuiteConfig};
//!
//! let all = suite(&SuiteConfig::default());
//! assert_eq!(all.len(), 17);
//! let names: Vec<&str> = all.iter().map(|w| w.name.as_str()).collect();
//! assert!(names.contains(&"FwAct"));
//! assert!(names.contains(&"FwBwLSTM"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod patterns;

mod composed;
mod elementwise;
mod fc;
mod gemm;
mod norm;
mod pool;
pub mod rnn;
mod softmax;

use miopt_gpu::{KernelDesc, KernelProgram, Op};
use patterns::{LayerGen, PatternSpec};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The paper's Figure 6 behavioural categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Cache policy changes execution time by <5% (CM, SGEMM, DGEMM).
    Insensitive,
    /// Caching consistently improves performance.
    ReuseSensitive,
    /// Caching consistently hurts performance (FwAct, FwLRN, BwAct).
    ThroughputSensitive,
}

/// Scaling and sizing knobs for the benchmark suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteConfig {
    /// Paper footprints are divided by this. 16 is the calibrated default;
    /// larger values give faster, smaller runs with the same qualitative
    /// behaviour.
    pub footprint_divisor: u64,
}

impl SuiteConfig {
    /// The calibrated reproduction scale (1/16 of paper footprints).
    #[must_use]
    pub fn paper() -> SuiteConfig {
        SuiteConfig {
            footprint_divisor: 16,
        }
    }

    /// A much smaller scale for unit tests and smoke benchmarks
    /// (1/256 of paper footprints).
    #[must_use]
    pub fn quick() -> SuiteConfig {
        SuiteConfig {
            footprint_divisor: 256,
        }
    }

    /// Scales a paper footprint, with a floor that keeps patterns
    /// meaningful.
    #[must_use]
    pub fn scaled(&self, paper_bytes: u64) -> u64 {
        (paper_bytes / self.footprint_divisor).max(64 * 1024)
    }
}

impl Default for SuiteConfig {
    fn default() -> SuiteConfig {
        SuiteConfig::paper()
    }
}

/// One Table 2 benchmark: a named sequence of kernel launches.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name as in the paper (e.g. `"FwAct"`).
    pub name: String,
    /// The category the paper assigns it (used for report ordering and as
    /// the acceptance criterion for Figure 6).
    pub category: Category,
    /// Kernel launches, in order. Repeated launches share their
    /// [`KernelDesc`] template (and therefore their PCs).
    pub launches: Vec<Arc<KernelDesc>>,
    /// Total bytes of the distinct arrays the workload touches
    /// (Table 2 "GPU Footprint"), recorded at construction.
    pub footprint: u64,
}

impl Workload {
    /// Number of distinct kernel templates (Table 2 "Unique Kernels").
    #[must_use]
    pub fn unique_kernels(&self) -> usize {
        self.launches
            .iter()
            .map(|k| k.template_id)
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Total kernel launches (Table 2 "Total Kernels").
    #[must_use]
    pub fn total_kernels(&self) -> usize {
        self.launches.len()
    }

    /// The footprint in bytes (Table 2 "GPU Footprint").
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    /// A stable identity string for this workload instance, usable as a
    /// persistent experiment-cache key.
    ///
    /// The id is `<name>-<fnv64 hex>` where the digest covers the
    /// workload's name, footprint, and every launch's static geometry
    /// (template id, grid shape, program length and iteration count) —
    /// everything that determines the generated address stream. Two
    /// workloads built from different [`SuiteConfig`] scales therefore get
    /// different ids, while rebuilding the same suite reproduces the same
    /// id byte for byte.
    ///
    /// # Examples
    ///
    /// ```
    /// use miopt_workloads::{by_name, SuiteConfig};
    ///
    /// let a = by_name(&SuiteConfig::quick(), "FwPool").unwrap();
    /// let b = by_name(&SuiteConfig::quick(), "FwPool").unwrap();
    /// assert_eq!(a.stable_id(), b.stable_id());
    /// let c = by_name(&SuiteConfig::paper(), "FwPool").unwrap();
    /// assert_ne!(a.stable_id(), c.stable_id());
    /// ```
    #[must_use]
    pub fn stable_id(&self) -> String {
        let mut h = miopt_engine::hash::Fnv1a::new();
        h.write(self.name.as_bytes());
        h.write_u64(self.footprint);
        h.write_u64(self.launches.len() as u64);
        for k in &self.launches {
            h.write_u64(u64::from(k.template_id));
            h.write_u64(u64::from(k.wgs));
            h.write_u64(u64::from(k.wfs_per_wg));
            h.write_u64(u64::from(k.program.iters));
            h.write_u64(k.program.body.len() as u64);
        }
        format!("{}-{:016x}", self.name, h.finish())
    }
}

/// Allocates non-overlapping regions for a workload's arrays.
///
/// Consecutive regions are offset by one DRAM bank stride (one row x all
/// channels = 32 KiB on the Table 1 system) so that equal-rate streams
/// over different arrays occupy *different* banks instead of ping-ponging
/// rows within one bank — the placement a real allocator's page
/// interleaving produces.
#[derive(Debug)]
pub(crate) struct RegionAlloc {
    next: u64,
    count: u64,
    footprint: u64,
}

/// One DRAM row across all channels: lines_per_row x channels x 64 B.
const BANK_STRIDE: u64 = 32 * 1024;

impl RegionAlloc {
    /// Workload `index`'s allocator; workloads are 64 GiB apart so their
    /// address spaces never collide.
    pub(crate) fn for_workload(index: u64) -> RegionAlloc {
        RegionAlloc {
            next: index << 36,
            count: 0,
            footprint: 0,
        }
    }

    pub(crate) fn region(&mut self, bytes: u64) -> patterns::Region {
        // Round the start up to a bank-stride boundary, then skew by one
        // bank per region allocated so far.
        let aligned = self.next.div_ceil(BANK_STRIDE) * BANK_STRIDE;
        let base = aligned + (self.count % 16) * BANK_STRIDE;
        self.next = base + bytes;
        self.count += 1;
        self.footprint += bytes;
        patterns::Region::new(base, bytes)
    }

    /// Total bytes allocated so far (the workload footprint).
    pub(crate) fn allocated(&self) -> u64 {
        self.footprint
    }
}

/// Picks `(wgs, iters)` so that `wgs * wfs_per_wg * 64 * iters` covers
/// `total_elems`, aiming for `target_wgs` work-groups but keeping at least
/// 8 loop iterations per wavefront (iteration-indexed patterns such as
/// [`patterns::PatternKind::Revisit`] need several iterations to mean
/// anything).
pub(crate) fn grid(total_elems: u64, wfs_per_wg: u32, target_wgs: u32) -> (u32, u32) {
    let per_iter = u64::from(wfs_per_wg) * 64;
    let iters = (total_elems.div_ceil(per_iter * u64::from(target_wgs))).max(8);
    let wgs = total_elems.div_ceil(per_iter * iters).max(1);
    (wgs as u32, iters as u32)
}

/// Assembles a kernel from its pieces.
pub(crate) fn kernel(
    name: &str,
    template_id: u16,
    wgs: u32,
    wfs_per_wg: u32,
    iters: u32,
    body: Vec<Op>,
    pats: Vec<PatternSpec>,
) -> Arc<KernelDesc> {
    Arc::new(KernelDesc {
        name: name.to_string(),
        template_id,
        wgs,
        wfs_per_wg,
        program: KernelProgram::new(body, iters),
        gen: Arc::new(LayerGen::new(pats, wfs_per_wg, iters)),
    })
}

/// Builds all 17 benchmarks in the paper's figure order: the insensitive
/// group, the reuse-sensitive group, then the throughput-sensitive group.
#[must_use]
pub fn suite(cfg: &SuiteConfig) -> Vec<Workload> {
    vec![
        gemm::dgemm(cfg, 0),
        gemm::sgemm(cfg, 1),
        composed::cm(cfg, 2),
        norm::fw_bn(cfg, 3),
        pool::fw_pool(cfg, 4),
        softmax::fw_soft(cfg, 5),
        softmax::bw_soft(cfg, 6),
        pool::bw_pool(cfg, 7),
        rnn::fw_gru(cfg, 8),
        rnn::fw_lstm(cfg, 9),
        rnn::fwbw_gru(cfg, 10),
        rnn::fwbw_lstm(cfg, 11),
        norm::bw_bn(cfg, 12),
        fc::fw_fc(cfg, 13),
        elementwise::fw_act(cfg, 14),
        elementwise::fw_lrn(cfg, 15),
        elementwise::bw_act(cfg, 16),
    ]
}

/// Looks a benchmark up by its paper name (case-insensitive).
#[must_use]
pub fn by_name(cfg: &SuiteConfig, name: &str) -> Option<Workload> {
    suite(cfg)
        .into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_17_benchmarks_in_paper_order() {
        let s = suite(&SuiteConfig::quick());
        let names: Vec<&str> = s.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "DGEMM", "SGEMM", "CM", "FwBN", "FwPool", "FwSoft", "BwSoft", "BwPool", "FwGRU",
                "FwLSTM", "FwBwGRU", "FwBwLSTM", "BwBN", "FwFc", "FwAct", "FwLRN", "BwAct",
            ]
        );
    }

    #[test]
    fn categories_match_the_paper() {
        use Category::*;
        for w in suite(&SuiteConfig::quick()) {
            let expected = match w.name.as_str() {
                "DGEMM" | "SGEMM" | "CM" => Insensitive,
                "FwAct" | "FwLRN" | "BwAct" => ThroughputSensitive,
                _ => ReuseSensitive,
            };
            assert_eq!(w.category, expected, "{}", w.name);
        }
    }

    #[test]
    fn kernel_counts_match_table_2() {
        let s = suite(&SuiteConfig::quick());
        let get = |n: &str| s.iter().find(|w| w.name == n).unwrap();
        // Single-kernel layers.
        for n in [
            "FwAct", "BwAct", "FwBN", "BwBN", "FwPool", "BwPool", "FwSoft", "BwSoft", "FwLRN",
            "FwFc", "SGEMM", "DGEMM",
        ] {
            assert_eq!(get(n).total_kernels(), 1, "{n}");
            assert_eq!(get(n).unique_kernels(), 1, "{n}");
        }
        // Multi-kernel applications (Table 2: CM 4/130, RNN Fw 4/150,
        // RNN FwBw 6/363).
        assert_eq!(get("CM").unique_kernels(), 4);
        assert_eq!(get("CM").total_kernels(), 130);
        for n in ["FwGRU", "FwLSTM"] {
            assert_eq!(get(n).unique_kernels(), 4, "{n}");
            assert_eq!(get(n).total_kernels(), 150, "{n}");
        }
        for n in ["FwBwGRU", "FwBwLSTM"] {
            assert_eq!(get(n).unique_kernels(), 6, "{n}");
            assert_eq!(get(n).total_kernels(), 363, "{n}");
        }
    }

    #[test]
    fn footprints_are_ordered_like_table_2() {
        // The giant activation layers dwarf the RNNs at any scale.
        let s = suite(&SuiteConfig::paper());
        let fp = |n: &str| s.iter().find(|w| w.name == n).unwrap().footprint_bytes();
        assert!(fp("FwAct") > 32 * 1024 * 1024);
        assert!(fp("BwAct") >= fp("FwAct")); // both 2.4 GB in the paper
        assert!(fp("FwLSTM") < 4 * 1024 * 1024);
        assert!(fp("FwSoft") < 1024 * 1024);
        assert!(
            fp("BwBN") < 8 * 1024 * 1024,
            "BwBN stays near its paper size"
        );
        assert!(fp("FwPool") > 8 * 1024 * 1024, "FwPool must exceed the L2");
    }

    #[test]
    fn region_allocator_never_overlaps_and_skews_banks() {
        let mut a = RegionAlloc::for_workload(3);
        let r1 = a.region(5000);
        let r2 = a.region(100);
        let r3 = a.region(4096);
        assert!(r1.base + r1.bytes <= r2.base);
        assert!(r2.base + r2.bytes <= r3.base);
        assert_eq!(a.allocated(), 5000 + 100 + 4096);
        // Consecutive regions land in different DRAM banks: their bank
        // offsets (address / 32 KiB mod 16) differ.
        let bank = |base: u64| (base / (32 * 1024)) % 16;
        assert_ne!(bank(r1.base), bank(r2.base));
        assert_ne!(bank(r2.base), bank(r3.base));
        // Different workload indices are far apart.
        let mut b = RegionAlloc::for_workload(4);
        assert!(b.region(64).base >= 4 << 36);
    }

    #[test]
    fn grid_covers_requested_elements() {
        for total in [64u64, 1000, 1 << 20, (1 << 24) + 7] {
            let (wgs, iters) = grid(total, 4, 640);
            let covered = u64::from(wgs) * 4 * 64 * u64::from(iters);
            assert!(covered >= total, "{total}: covered {covered}");
            assert!(
                covered < total + (4 * 64 * u64::from(iters) * 2),
                "{total}: overshoot"
            );
        }
    }

    #[test]
    fn stable_ids_are_unique_reproducible_and_scale_sensitive() {
        let quick: Vec<String> = suite(&SuiteConfig::quick())
            .iter()
            .map(Workload::stable_id)
            .collect();
        // Unique within a suite.
        assert_eq!(quick.iter().collect::<BTreeSet<_>>().len(), quick.len());
        // Rebuilding reproduces identical ids.
        let again: Vec<String> = suite(&SuiteConfig::quick())
            .iter()
            .map(Workload::stable_id)
            .collect();
        assert_eq!(quick, again);
        // Footprint-scaled workloads get a different id at a different
        // scale (tiny natural-size workloads legitimately keep theirs).
        let q = by_name(&SuiteConfig::quick(), "FwPool").unwrap();
        let p = by_name(&SuiteConfig::paper(), "FwPool").unwrap();
        assert_ne!(q.stable_id(), p.stable_id());
    }

    #[test]
    fn by_name_is_case_insensitive() {
        let cfg = SuiteConfig::quick();
        assert!(by_name(&cfg, "fwact").is_some());
        assert!(by_name(&cfg, "FWACT").is_some());
        assert!(by_name(&cfg, "nope").is_none());
    }
}
