use crate::tags::set_index_for;
use miopt_engine::{Arena, HandleFifo, LineAddr, MemReq, ReqId};

/// Upper bound on preallocated waiter-pool slots; tables whose worst case
/// (`capacity * merge_cap`) exceeds this grow lazily past it instead.
const WAIT_POOL_PREALLOC_CAP: usize = 4096;

/// Why a request could not be added to the MSHR table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MshrReject {
    /// No free entries for a new line.
    Full,
    /// The line's entry exists but its merge list is at capacity.
    MergeFull,
}

/// One outstanding miss: the primary request plus merged secondaries.
///
/// Waiters live in the owning [`MshrTable`]'s arena; the entry only holds
/// the intrusive queue head, so allocating and merging never touch the
/// heap once the pool has warmed up.
#[derive(Debug)]
pub(crate) struct MshrEntry {
    /// Id of the request actually sent downstream; the fill must match it.
    pub(crate) primary: ReqId,
    /// All requests (primary first) waiting on the line, threaded through
    /// the table's waiter arena.
    pub(crate) waiters: HandleFifo,
    /// Whether the fill should install the line (`false` for bypass
    /// coalescing, where the data is forwarded without insertion).
    pub(crate) allocates: bool,
    /// The (set, way) reserved when `allocates`, for the Busy→Valid
    /// transition at fill time.
    pub(crate) reserved: Option<(usize, usize)>,
}

/// Miss-status holding registers: tracks outstanding misses per line and
/// merges (coalesces) requests to a line already being fetched.
///
/// Both cached misses and pending bypass loads live here — the paper notes
/// that even with caching disabled, "read requests to the same cache line
/// may be coalesced while the original bypass request is pending".
#[derive(Debug)]
pub(crate) struct MshrTable {
    /// Outstanding entries bucketed by cache set index — the same dense
    /// direct index the tag array uses — instead of hashing the full line
    /// address. The lookup accompanying every cache access then touches
    /// one short bucket (almost always empty or a single entry) with no
    /// hasher on the path.
    buckets: Vec<Vec<(LineAddr, MshrEntry)>>,
    /// Slab arena holding every waiter of every entry; slots are reused,
    /// so steady-state allocate/merge/complete traffic is heap-free.
    wait_pool: Arena<MemReq>,
    sets: usize,
    low_bits: u32,
    skip_bits: u32,
    len: usize,
    capacity: usize,
    merge_cap: usize,
}

impl MshrTable {
    /// Builds a table bucketed by the owning cache's set geometry (`sets`,
    /// `low_bits`, `skip_bits` as in [`set_index_for`]).
    pub(crate) fn new(
        capacity: usize,
        merge_cap: usize,
        sets: usize,
        low_bits: u32,
        skip_bits: u32,
    ) -> MshrTable {
        MshrTable {
            // Give each bucket room for a couple of entries up front so the
            // first misses landing in a set never grow its vector.
            buckets: (0..sets).map(|_| Vec::with_capacity(4)).collect(),
            wait_pool: Arena::with_capacity(
                capacity
                    .saturating_mul(merge_cap)
                    .min(WAIT_POOL_PREALLOC_CAP),
            ),
            sets,
            low_bits,
            skip_bits,
            len: 0,
            capacity,
            merge_cap,
        }
    }

    fn bucket_of(&self, line: LineAddr) -> usize {
        set_index_for(line, self.sets, self.low_bits, self.skip_bits)
    }

    /// Whether a new entry can be allocated.
    pub(crate) fn has_free_entry(&self) -> bool {
        self.len < self.capacity
    }

    /// The entry for `line`, if one is outstanding.
    pub(crate) fn get(&self, line: LineAddr) -> Option<&MshrEntry> {
        self.buckets[self.bucket_of(line)]
            .iter()
            .find(|(l, _)| *l == line)
            .map(|(_, e)| e)
    }

    /// Iterates `entry`'s waiting requests in arrival order (primary
    /// first).
    pub(crate) fn waiters_of<'a>(&'a self, entry: &MshrEntry) -> impl Iterator<Item = &'a MemReq> {
        entry.waiters.iter(&self.wait_pool)
    }

    /// Removes and returns `entry`'s oldest waiter, releasing its pool
    /// slot. Used to drain a completed entry.
    pub(crate) fn pop_waiter(&mut self, entry: &mut MshrEntry) -> Option<MemReq> {
        entry.waiters.pop_value(&mut self.wait_pool)
    }

    /// Allocates a new entry with `req` as the primary.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if an entry for the line already exists or
    /// the table is full (callers check first).
    pub(crate) fn allocate(
        &mut self,
        req: MemReq,
        allocates: bool,
        reserved: Option<(usize, usize)>,
    ) {
        debug_assert!(self.has_free_entry());
        debug_assert!(
            self.get(req.line).is_none(),
            "duplicate MSHR entry for {}",
            req.line
        );
        let b = self.bucket_of(req.line);
        let primary = req.id;
        let line = req.line;
        let mut waiters = HandleFifo::new();
        let h = self.wait_pool.insert(req);
        waiters.push_back(&mut self.wait_pool, h);
        self.buckets[b].push((
            line,
            MshrEntry {
                primary,
                waiters,
                allocates,
                reserved,
            },
        ));
        self.len += 1;
    }

    /// Merges `req` into the existing entry for its line.
    ///
    /// # Errors
    ///
    /// Returns the request back if there is no entry or the merge list is
    /// full.
    pub(crate) fn merge(&mut self, req: MemReq) -> Result<(), (MemReq, MshrReject)> {
        let b = self.bucket_of(req.line);
        let Some(pos) = self.buckets[b].iter().position(|(l, _)| *l == req.line) else {
            return Err((req, MshrReject::Full));
        };
        if self.buckets[b][pos].1.waiters.len() >= self.merge_cap {
            return Err((req, MshrReject::MergeFull));
        }
        let h = self.wait_pool.insert(req);
        self.buckets[b][pos]
            .1
            .waiters
            .push_back(&mut self.wait_pool, h);
        Ok(())
    }

    /// Removes and returns the entry for `line` if its primary id is `id`.
    ///
    /// The caller must drain the returned entry's waiters with
    /// [`MshrTable::pop_waiter`]; handles left in the queue keep their
    /// pool slots occupied.
    pub(crate) fn complete(&mut self, line: LineAddr, id: ReqId) -> Option<MshrEntry> {
        let b = self.bucket_of(line);
        let pos = self.buckets[b]
            .iter()
            .position(|(l, e)| *l == line && e.primary == id)?;
        self.len -= 1;
        Some(self.buckets[b].remove(pos).1)
    }

    /// Number of outstanding entries.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Whether no misses are outstanding.
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Configured entry capacity (sentinel checks).
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Configured merge-list capacity (sentinel checks).
    pub(crate) fn merge_cap(&self) -> usize {
        self.merge_cap
    }

    /// Iterates over outstanding entries in unspecified order; callers
    /// needing determinism must sort by line.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (&LineAddr, &MshrEntry)> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter().map(|(l, e)| (l, e)))
    }

    /// Fault-injection hook: inserts a phantom entry whose primary id will
    /// never be answered by a fill, modeling a leaked MSHR. Sentinel
    /// validation only.
    pub(crate) fn inject_phantom(&mut self, req: MemReq, allocating: bool) {
        let b = self.bucket_of(req.line);
        let line = req.line;
        let primary = req.id;
        let mut waiters = HandleFifo::new();
        let h = self.wait_pool.insert(req);
        waiters.push_back(&mut self.wait_pool, h);
        let entry = MshrEntry {
            primary,
            waiters,
            allocates: allocating,
            reserved: None,
        };
        if let Some(pos) = self.buckets[b].iter().position(|(l, _)| *l == line) {
            // Release the displaced entry's waiters before overwriting so
            // the pool does not leak slots.
            let mut old = std::mem::replace(&mut self.buckets[b][pos].1, entry);
            while old.waiters.pop_value(&mut self.wait_pool).is_some() {}
        } else {
            self.buckets[b].push((line, entry));
            self.len += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miopt_engine::{AccessKind, Cycle, Origin, Pc};

    fn req(id: u64, line: u64) -> MemReq {
        MemReq {
            id: ReqId(id),
            line: LineAddr(line),
            is_store: false,
            kind: AccessKind::Cached,
            pc: Pc(0),
            origin: Origin::Wavefront { cu: 0, slot: 0 },
            issue_cycle: Cycle(0),
        }
    }

    #[test]
    fn allocate_then_complete_returns_waiters() {
        let mut m = MshrTable::new(2, 4, 4, 31, 0);
        m.allocate(req(1, 10), true, Some((0, 1)));
        m.merge(req(2, 10)).unwrap();
        m.merge(req(3, 10)).unwrap();
        let mut e = m.complete(LineAddr(10), ReqId(1)).unwrap();
        assert_eq!(e.waiters.len(), 3);
        assert_eq!(e.reserved, Some((0, 1)));
        assert!(m.is_empty());
        let mut ids = Vec::new();
        while let Some(w) = m.pop_waiter(&mut e) {
            ids.push(w.id.0);
        }
        assert_eq!(ids, vec![1, 2, 3], "waiters drain primary-first in order");
    }

    #[test]
    fn complete_with_wrong_id_is_passthrough() {
        let mut m = MshrTable::new(2, 4, 4, 31, 0);
        m.allocate(req(1, 10), false, None);
        // A different (untracked) request's response for the same line must
        // not consume the entry.
        assert!(m.complete(LineAddr(10), ReqId(99)).is_none());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn merge_cap_is_enforced() {
        let mut m = MshrTable::new(2, 2, 4, 31, 0);
        m.allocate(req(1, 10), false, None);
        m.merge(req(2, 10)).unwrap();
        let (back, why) = m.merge(req(3, 10)).unwrap_err();
        assert_eq!(back.id, ReqId(3));
        assert_eq!(why, MshrReject::MergeFull);
    }

    #[test]
    fn capacity_is_tracked() {
        let mut m = MshrTable::new(1, 2, 4, 31, 0);
        assert!(m.has_free_entry());
        m.allocate(req(1, 10), false, None);
        assert!(!m.has_free_entry());
        let mut e = m.complete(LineAddr(10), ReqId(1)).unwrap();
        while m.pop_waiter(&mut e).is_some() {}
        assert!(m.has_free_entry());
    }

    #[test]
    fn merge_without_entry_is_rejected() {
        let mut m = MshrTable::new(1, 2, 4, 31, 0);
        let (back, why) = m.merge(req(1, 5)).unwrap_err();
        assert_eq!(back.line, LineAddr(5));
        assert_eq!(why, MshrReject::Full);
    }

    #[test]
    fn steady_churn_never_grows_the_pool() {
        let mut m = MshrTable::new(4, 4, 4, 31, 0);
        let baseline = {
            // Warm up one full round first so bucket vectors settle.
            m.allocate(req(1, 10), false, None);
            let mut e = m.complete(LineAddr(10), ReqId(1)).unwrap();
            while m.pop_waiter(&mut e).is_some() {}
            m.wait_pool.capacity()
        };
        for round in 0..100u64 {
            let id = round * 10;
            m.allocate(req(id, round % 7), false, None);
            m.merge(req(id + 1, round % 7)).unwrap();
            let mut e = m.complete(LineAddr(round % 7), ReqId(id)).unwrap();
            while m.pop_waiter(&mut e).is_some() {}
        }
        assert_eq!(
            m.wait_pool.capacity(),
            baseline,
            "waiter churn must reuse pool slots"
        );
        assert!(m.wait_pool.is_empty());
    }
}
