use miopt_engine::stats::Counter;
use miopt_engine::Pc;

/// Configuration of the PC-based reuse predictor (paper Section VII.C,
/// after Tian et al., "Adaptive GPU cache bypassing").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Number of saturating counters (power of two recommended).
    pub entries: usize,
    /// Saturating-counter ceiling.
    pub max_counter: u8,
    /// A PC caches its lines while its counter is `>= threshold`.
    pub threshold: u8,
    /// Every `sample_period`-th request from a bypassing PC is cached
    /// anyway, so the predictor can observe reuse and recover (set
    /// sampling / dueling in the original proposal).
    pub sample_period: u32,
}

impl PredictorConfig {
    /// The configuration used in the paper reproduction: 256 3-bit
    /// counters, threshold 2, 1-in-32 sampling.
    #[must_use]
    pub fn paper() -> PredictorConfig {
        PredictorConfig {
            entries: 256,
            max_counter: 7,
            threshold: 2,
            sample_period: 32,
        }
    }
}

impl Default for PredictorConfig {
    fn default() -> PredictorConfig {
        PredictorConfig::paper()
    }
}

/// Per-PC reuse statistics of the predictor.
#[derive(Debug, Clone, Default)]
pub struct PredictorStats {
    /// Queries that predicted reuse (request cached).
    pub predict_cache: Counter,
    /// Queries that predicted no reuse (request bypassed).
    pub predict_bypass: Counter,
    /// Positive training events (a cached line was reused).
    pub trained_reuse: Counter,
    /// Negative training events (a line was evicted untouched).
    pub trained_no_reuse: Counter,
}

/// A table of per-PC saturating counters predicting whether lines inserted
/// by a static memory instruction will be reused before eviction.
///
/// Counters start saturated (cache everything, learn to bypass), are
/// incremented when a line inserted by the PC is hit, and decremented when
/// such a line is evicted or invalidated without any reuse.
///
/// # Examples
///
/// ```
/// use miopt_cache::{PcPredictor, PredictorConfig};
/// use miopt_engine::Pc;
///
/// let mut p = PcPredictor::new(PredictorConfig::paper());
/// let pc = Pc(0x40);
/// assert!(p.should_cache(pc)); // optimistic start
/// for _ in 0..8 {
///     p.train_no_reuse(pc);
/// }
/// assert!(!p.should_cache(pc)); // learned to bypass
/// ```
#[derive(Debug)]
pub struct PcPredictor {
    cfg: PredictorConfig,
    counters: Vec<u8>,
    queries: u32,
    stats: PredictorStats,
}

impl PcPredictor {
    /// Builds a predictor with every counter saturated.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.entries` is zero or `threshold > max_counter`.
    #[must_use]
    pub fn new(cfg: PredictorConfig) -> PcPredictor {
        assert!(cfg.entries > 0, "predictor needs at least one entry");
        assert!(cfg.threshold <= cfg.max_counter, "threshold above ceiling");
        PcPredictor {
            counters: vec![cfg.max_counter; cfg.entries],
            cfg,
            queries: 0,
            stats: PredictorStats::default(),
        }
    }

    fn index(&self, pc: Pc) -> usize {
        // Fibonacci hash of the PC.
        let h = (u64::from(pc.0)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % self.counters.len()
    }

    /// Whether a request from `pc` should be cached (predicted reuse), with
    /// periodic sampling so bypassing PCs can relearn.
    pub fn should_cache(&mut self, pc: Pc) -> bool {
        self.queries = self.queries.wrapping_add(1);
        let idx = self.index(pc);
        let predicted = self.counters[idx] >= self.cfg.threshold;
        let sampled =
            self.cfg.sample_period > 0 && self.queries.is_multiple_of(self.cfg.sample_period);
        let cache = predicted || sampled;
        if cache {
            self.stats.predict_cache.inc();
        } else {
            self.stats.predict_bypass.inc();
        }
        cache
    }

    /// Records that a line inserted by `pc` was reused.
    pub fn train_reuse(&mut self, pc: Pc) {
        let idx = self.index(pc);
        if self.counters[idx] < self.cfg.max_counter {
            self.counters[idx] += 1;
        }
        self.stats.trained_reuse.inc();
    }

    /// Records that a line inserted by `pc` was evicted without reuse.
    pub fn train_no_reuse(&mut self, pc: Pc) {
        let idx = self.index(pc);
        if self.counters[idx] > 0 {
            self.counters[idx] -= 1;
        }
        self.stats.trained_no_reuse.inc();
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &PredictorStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_sampling() -> PredictorConfig {
        PredictorConfig {
            sample_period: 0,
            ..PredictorConfig::paper()
        }
    }

    #[test]
    fn starts_optimistic() {
        let mut p = PcPredictor::new(no_sampling());
        assert!(p.should_cache(Pc(1)));
        assert!(p.should_cache(Pc(2)));
    }

    #[test]
    fn learns_to_bypass_then_recovers() {
        let mut p = PcPredictor::new(no_sampling());
        let pc = Pc(5);
        for _ in 0..10 {
            p.train_no_reuse(pc);
        }
        assert!(!p.should_cache(pc));
        for _ in 0..10 {
            p.train_reuse(pc);
        }
        assert!(p.should_cache(pc));
    }

    #[test]
    fn sampling_periodically_caches_anyway() {
        let mut p = PcPredictor::new(PredictorConfig {
            sample_period: 4,
            ..PredictorConfig::paper()
        });
        let pc = Pc(5);
        for _ in 0..10 {
            p.train_no_reuse(pc);
        }
        let cached = (0..16).filter(|_| p.should_cache(pc)).count();
        assert_eq!(cached, 4, "one in four sampled");
    }

    #[test]
    fn distinct_pcs_train_independently() {
        let mut p = PcPredictor::new(no_sampling());
        // Find two PCs that do not collide in the table.
        let (a, b) = (Pc(1), Pc(2));
        assert_ne!(p.index(a), p.index(b), "test PCs collide; pick others");
        for _ in 0..10 {
            p.train_no_reuse(a);
        }
        assert!(!p.should_cache(a));
        assert!(p.should_cache(b));
    }

    #[test]
    fn counters_saturate_both_ends() {
        let mut p = PcPredictor::new(no_sampling());
        let pc = Pc(9);
        for _ in 0..100 {
            p.train_no_reuse(pc);
        }
        assert_eq!(p.counters[p.index(pc)], 0);
        for _ in 0..100 {
            p.train_reuse(pc);
        }
        assert_eq!(p.counters[p.index(pc)], p.cfg.max_counter);
    }

    #[test]
    fn stats_count_events() {
        let mut p = PcPredictor::new(no_sampling());
        let pc = Pc(1);
        let _ = p.should_cache(pc);
        p.train_reuse(pc);
        p.train_no_reuse(pc);
        assert_eq!(p.stats().predict_cache.get(), 1);
        assert_eq!(p.stats().trained_reuse.get(), 1);
        assert_eq!(p.stats().trained_no_reuse.get(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        let _ = PcPredictor::new(PredictorConfig {
            entries: 0,
            ..PredictorConfig::paper()
        });
    }
}
