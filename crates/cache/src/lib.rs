//! GPU cache model for the `miopt` simulator.
//!
//! Implements the write-through, self-invalidating GPU caches of the paper
//! (Section III) plus the three Section VII optimizations:
//!
//! * **Allocation bypass** (`CacheRW-AB`): when a cached request would have
//!   to stall because every way of its set holds a pending (busy) line, the
//!   request is converted to a bypass instead of blocking.
//! * **Row-locality-aware cache rinsing** (`CacheRW-CR`): a [`DirtyBlockIndex`]
//!   tracks dirty blocks per DRAM row; evicting one dirty block triggers a
//!   writeback of every other dirty block in that row.
//! * **PC-based bypass prediction** (`CacheRW-PCby`): a [`PcPredictor`]
//!   learns, per static memory instruction, whether its lines see reuse, and
//!   bypasses the L2 for loads and stores predicted reuse-less.
//!
//! The central type is [`CacheUnit`], which models one physical cache (an L1
//! per compute unit, or one slice of the shared L2). It is *passive*: the
//! system loop drives it by calling [`CacheUnit::access`] for requests
//! arriving from above and [`CacheUnit::fill`] for responses arriving from
//! below, passing the adjacent [`TimedQueue`](miopt_engine::TimedQueue)s explicitly. A request that
//! cannot be serviced this cycle returns a [`Blocked`] reason and the cache
//! records one *cache stall* — the paper's Figure 8 metric ("any cycle in
//! which a ready cache request is blocked from querying a cache").
//!
//! # Examples
//!
//! ```
//! use miopt_cache::{CacheConfig, CacheUnit, LevelPolicy};
//! use miopt_engine::{AccessKind, Cycle, LineAddr, MemReq, Origin, Pc, ReqId, TimedQueue};
//!
//! let mut cache = CacheUnit::new(CacheConfig::l1_paper(), LevelPolicy::cache_loads_only(), 0);
//! let mut down = TimedQueue::new(16, 1);
//! let mut up = TimedQueue::new(16, 1);
//! let load = MemReq {
//!     id: ReqId(1),
//!     line: LineAddr(7),
//!     is_store: false,
//!     kind: AccessKind::Cached,
//!     pc: Pc(0),
//!     origin: Origin::Wavefront { cu: 0, slot: 0 },
//!     issue_cycle: Cycle(0),
//! };
//! // Cold miss: forwarded downstream.
//! cache.access(Cycle(0), load, &mut down, &mut up).unwrap();
//! assert_eq!(down.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dbi;
mod mshr;
mod predictor;
mod stats;
mod tags;
mod unit;

pub use config::{CacheConfig, LevelPolicy, RowMap, WayRange};
pub use dbi::DirtyBlockIndex;
pub use predictor::{PcPredictor, PredictorConfig};
pub use stats::CacheStats;
pub use unit::{Blocked, CacheUnit, Outcome};
