use crate::predictor::PredictorConfig;
use miopt_engine::util::is_pow2;
use miopt_engine::LineAddr;

/// Identifies the DRAM row of a line for the dirty-block index, without
/// depending on the DRAM crate.
///
/// Must be constructed consistently with the DRAM address map: with a
/// line-interleaved layout `| channel | column | bank | row |`, the row key
/// is the line address with the column bits removed.
///
/// # Examples
///
/// ```
/// use miopt_cache::RowMap;
/// use miopt_engine::LineAddr;
///
/// let map = RowMap::new(4, 5); // 16 channels, 32-line rows
/// // Lines 0 and 16 share channel 0, bank 0, row 0:
/// assert_eq!(map.key(LineAddr(0)), map.key(LineAddr(16)));
/// // Line 1 is in a different channel:
/// assert_ne!(map.key(LineAddr(0)), map.key(LineAddr(1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowMap {
    channel_bits: u32,
    column_bits: u32,
}

impl RowMap {
    /// Builds a row map for the given channel and column (lines-per-row)
    /// bit widths.
    #[must_use]
    pub fn new(channel_bits: u32, column_bits: u32) -> RowMap {
        RowMap {
            channel_bits,
            column_bits,
        }
    }

    /// Lines per DRAM row — the largest rinse set one row can produce.
    #[must_use]
    pub fn lines_per_row(&self) -> usize {
        1 << self.column_bits
    }

    /// The (channel, bank, row) key of a line.
    #[must_use]
    pub fn key(&self, line: LineAddr) -> u64 {
        let ch = line.0 & ((1 << self.channel_bits) - 1);
        let upper = line.0 >> (self.channel_bits + self.column_bits);
        (upper << self.channel_bits) | ch
    }
}

/// Geometry and resource configuration of one physical cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// MSHR entries (distinct outstanding miss lines).
    pub mshr_entries: usize,
    /// Maximum requests merged into one MSHR entry (including the primary).
    pub mshr_merge_cap: usize,
    /// Tag-array accesses accepted per cycle.
    pub port_width: u32,
    /// Maximum dirty rows tracked by the dirty-block index (rinsing only).
    pub dbi_rows: usize,
    /// Writebacks emitted per cycle during a bulk dirty flush.
    pub flush_width: u32,
    /// Low line-address bits kept verbatim by the set index;
    /// `>= log2(sets)` means plain low-bit indexing (gem5-faithful, used
    /// at the L1 -- the paper's allocation-blocking stalls depend on it).
    pub index_low_bits: u32,
    /// Line-address bits skipped above `index_low_bits` (the slice
    /// selector for an L2 slice; 0 for an unsliced cache).
    pub index_skip_bits: u32,
}

impl CacheConfig {
    /// Table 1 GPU L1 data cache: 16 KB, 64 B lines, 16-way (16 sets).
    #[must_use]
    pub fn l1_paper() -> CacheConfig {
        CacheConfig {
            sets: 16,
            ways: 16,
            // Effectively uncapped: the GCN vector L1 is a streaming
            // write-through cache whose outstanding misses are bounded by
            // busy *lines*, not a miss-entry table — allocation blocking
            // (all ways of a set busy) is the paper's stall source.
            mshr_entries: 256,
            mshr_merge_cap: 8,
            port_width: 1,
            dbi_rows: 0,
            flush_width: 2,
            index_low_bits: 31,
            index_skip_bits: 0,
        }
    }

    /// One slice of the Table 1 GPU L2: 4 MB / 16 slices = 256 KB,
    /// 64 B lines, 16-way (256 sets).
    #[must_use]
    pub fn l2_slice_paper() -> CacheConfig {
        CacheConfig {
            sets: 256,
            ways: 16,
            mshr_entries: 64,
            mshr_merge_cap: 16,
            port_width: 2,
            dbi_rows: 64,
            flush_width: 8,
            // Keep the 5 column bits, skip the 4 slice-selector bits.
            index_low_bits: 5,
            index_skip_bits: 4,
        }
    }

    /// A small geometry for unit tests (4 sets, 2 ways).
    #[must_use]
    pub fn tiny_test() -> CacheConfig {
        CacheConfig {
            sets: 4,
            ways: 2,
            mshr_entries: 4,
            mshr_merge_cap: 2,
            port_width: 1,
            dbi_rows: 4,
            flush_width: 1,
            index_low_bits: 31,
            index_skip_bits: 0,
        }
    }

    /// Total lines (sets × ways).
    #[must_use]
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.lines() as u64 * miopt_engine::LINE_BYTES
    }

    /// Validates geometry constraints.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !is_pow2(self.sets as u64) {
            return Err(format!("sets must be a power of two, got {}", self.sets));
        }
        if self.ways == 0 {
            return Err("ways must be nonzero".to_string());
        }
        if self.mshr_entries == 0 {
            return Err("mshr_entries must be nonzero".to_string());
        }
        if self.mshr_merge_cap == 0 {
            return Err("mshr_merge_cap must be nonzero".to_string());
        }
        if self.port_width == 0 {
            return Err("port_width must be nonzero".to_string());
        }
        Ok(())
    }
}

/// A contiguous range of ways that allocations are confined to — QoS
/// way-partitioning for multi-tenant serving.
///
/// Only *allocation* (victim selection) is restricted; probes still
/// search every way, so a line legitimately installed elsewhere (for
/// example before the partition changed at a kernel boundary) still
/// hits. This is the standard way-partitioning semantics (Intel CAT,
/// gem5's `WayPartitioningPolicy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WayRange {
    /// First way of the partition.
    pub first: usize,
    /// Number of ways in the partition.
    pub count: usize,
}

impl WayRange {
    /// A partition spanning ways `first .. first + count`.
    #[must_use]
    pub fn new(first: usize, count: usize) -> WayRange {
        WayRange { first, count }
    }

    /// One past the last way of the partition.
    #[must_use]
    pub fn end(&self) -> usize {
        self.first + self.count
    }

    /// Checks the partition is non-empty and fits a `ways`-way cache.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self, ways: usize) -> Result<(), String> {
        if self.count == 0 {
            return Err("way partition must contain at least one way".to_string());
        }
        if self.end() > ways {
            return Err(format!(
                "way partition {}..{} exceeds {} ways",
                self.first,
                self.end(),
                ways
            ));
        }
        Ok(())
    }
}

/// How one cache level treats loads and stores, including the paper's
/// Section VII optimizations.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelPolicy {
    /// Whether this level is active at all. A disabled cache forwards
    /// everything as bypass without touching tags (the `Uncached` policy).
    pub enabled: bool,
    /// Cache load data at this level.
    pub cache_loads: bool,
    /// Absorb stores at this level (write-allocate, written back on flush
    /// or eviction). When `false` stores pass through (write-through,
    /// no-allocate), invalidating any stale copy.
    pub cache_stores: bool,
    /// Allocation bypass (AB): convert to bypass instead of stalling when
    /// every way of the set is busy.
    pub allocation_bypass: bool,
    /// Row-locality-aware rinsing (CR): requires `row_map`.
    pub rinse: bool,
    /// PC-based bypass prediction (PCby) for loads and stores.
    pub pc_bypass: Option<PredictorConfig>,
    /// Row map for the dirty-block index; required when `rinse` is on.
    pub row_map: Option<RowMap>,
    /// Confine allocations to a contiguous range of ways (QoS
    /// way-partitioning); `None` uses every way.
    pub partition: Option<WayRange>,
}

impl LevelPolicy {
    /// Fully disabled level (the `Uncached` static policy).
    #[must_use]
    pub fn disabled() -> LevelPolicy {
        LevelPolicy {
            enabled: false,
            cache_loads: false,
            cache_stores: false,
            allocation_bypass: false,
            rinse: false,
            pc_bypass: None,
            row_map: None,
            partition: None,
        }
    }

    /// Cache loads only; stores pass through (the `CacheR` policy, and the
    /// L1 level of every caching policy — stores always bypass the L1).
    #[must_use]
    pub fn cache_loads_only() -> LevelPolicy {
        LevelPolicy {
            enabled: true,
            cache_loads: true,
            cache_stores: false,
            allocation_bypass: false,
            rinse: false,
            pc_bypass: None,
            row_map: None,
            partition: None,
        }
    }

    /// Cache loads and absorb stores (the `CacheRW` policy at the L2).
    #[must_use]
    pub fn cache_loads_and_stores() -> LevelPolicy {
        LevelPolicy {
            cache_stores: true,
            ..LevelPolicy::cache_loads_only()
        }
    }

    /// Validates optimization prerequisites.
    ///
    /// # Errors
    ///
    /// Returns a message if `rinse` is enabled without a `row_map`, or
    /// if a way partition is empty. (Whether a partition *fits* is
    /// checked against the cache geometry by `CacheUnit::new`.)
    pub fn validate(&self) -> Result<(), String> {
        if self.rinse && self.row_map.is_none() {
            return Err("rinse requires a row_map".to_string());
        }
        if let Some(p) = self.partition {
            if p.count == 0 {
                return Err("way partition must contain at least one way".to_string());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_is_16kb() {
        let cfg = CacheConfig::l1_paper();
        cfg.validate().unwrap();
        assert_eq!(cfg.bytes(), 16 * 1024);
        assert_eq!(cfg.ways, 16);
    }

    #[test]
    fn paper_l2_slices_total_4mb() {
        let cfg = CacheConfig::l2_slice_paper();
        cfg.validate().unwrap();
        assert_eq!(cfg.bytes() * 16, 4 * 1024 * 1024);
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let mut cfg = CacheConfig::tiny_test();
        cfg.sets = 3;
        assert!(cfg.validate().is_err());
        let mut cfg = CacheConfig::tiny_test();
        cfg.ways = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = CacheConfig::tiny_test();
        cfg.mshr_entries = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rinse_requires_row_map() {
        let mut p = LevelPolicy::cache_loads_and_stores();
        p.rinse = true;
        assert!(p.validate().is_err());
        p.row_map = Some(RowMap::new(4, 5));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn row_map_strips_columns() {
        let m = RowMap::new(2, 3); // 4 channels, 8-line rows
                                   // Same channel, all 8 columns of row 0, bank 0 share a key.
        let base = m.key(LineAddr(0));
        for col in 0..8u64 {
            assert_eq!(m.key(LineAddr(col * 4)), base);
        }
        // Next bank (line 8*4=32) differs.
        assert_ne!(m.key(LineAddr(32)), base);
    }

    #[test]
    fn way_range_validation() {
        assert!(WayRange::new(0, 16).validate(16).is_ok());
        assert!(WayRange::new(8, 8).validate(16).is_ok());
        assert!(WayRange::new(8, 9).validate(16).is_err());
        assert!(WayRange::new(0, 0).validate(16).is_err());
        assert_eq!(WayRange::new(4, 4).end(), 8);
    }

    #[test]
    fn empty_partition_is_rejected() {
        let mut p = LevelPolicy::cache_loads_only();
        p.partition = Some(WayRange::new(0, 0));
        assert!(p.validate().is_err());
        p.partition = Some(WayRange::new(0, 4));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn policy_presets_are_consistent() {
        assert!(!LevelPolicy::disabled().enabled);
        let r = LevelPolicy::cache_loads_only();
        assert!(r.enabled && r.cache_loads && !r.cache_stores);
        let rw = LevelPolicy::cache_loads_and_stores();
        assert!(rw.cache_loads && rw.cache_stores);
    }
}
