use crate::RowMap;
use miopt_engine::sentinel::{InvariantViolation, Sentinel};
use miopt_engine::LineAddr;
use std::collections::{HashMap, VecDeque};

/// The dirty-block index of Seshadri et al. (ISCA 2014), applied to the GPU
/// L2 as in paper Section VII.B: tracks which blocks of each DRAM row are
/// dirty so that evicting one dirty block can *rinse* (write back) all of
/// them together, preserving DRAM row locality.
///
/// The index has finite capacity; inserting a block of an untracked row
/// when full evicts the least-recently-inserted row, and the caller must
/// rinse that row's blocks (exactly the DBI eviction behaviour of the
/// original proposal).
///
/// # Examples
///
/// ```
/// use miopt_cache::{DirtyBlockIndex, RowMap};
/// use miopt_engine::LineAddr;
///
/// let map = RowMap::new(4, 5);
/// let mut dbi = DirtyBlockIndex::new(8, map);
/// dbi.insert(LineAddr(0));
/// dbi.insert(LineAddr(16)); // same row
/// let rinse = dbi.take_row_of(LineAddr(0));
/// assert_eq!(rinse.len(), 2);
/// ```
#[derive(Debug)]
pub struct DirtyBlockIndex {
    rows: HashMap<u64, Vec<LineAddr>>,
    order: VecDeque<u64>,
    /// Emptied block vectors reclaimed from evicted/rinsed rows, reused by
    /// later inserts so steady-state row churn never touches the heap.
    spare: Vec<Vec<LineAddr>>,
    capacity: usize,
    map: RowMap,
}

impl DirtyBlockIndex {
    /// Builds an index tracking at most `capacity` rows.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, map: RowMap) -> DirtyBlockIndex {
        assert!(capacity > 0, "DBI capacity must be nonzero");
        DirtyBlockIndex {
            // The row map is bounded at `capacity` entries (eviction runs
            // before insertion at the limit), so pre-sizing both it and the
            // block-vector pool makes row turnover allocation-free.
            rows: HashMap::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            // A row's block vector can grow to the full rinse set; sizing
            // the pool for that up front means tracking never reallocates,
            // even in the first rinse cycles.
            spare: (0..capacity)
                .map(|_| Vec::with_capacity(map.lines_per_row().min(64)))
                .collect(),
            capacity,
            map,
        }
    }

    /// Takes a reclaimed block vector from the pool, or a fresh one if the
    /// pool ran dry (rows handed out via [`DirtyBlockIndex::take_row_of`]
    /// leave with their vector).
    fn fresh_blocks(&mut self) -> Vec<LineAddr> {
        self.spare.pop().unwrap_or_default()
    }

    /// Returns an emptied block vector to the pool.
    fn reclaim(&mut self, mut blocks: Vec<LineAddr>) {
        if self.spare.len() < self.capacity {
            blocks.clear();
            self.spare.push(blocks);
        }
    }

    /// Records that `line` became dirty. If the index is full and the
    /// line's row is untracked, returns the blocks of an evicted row, which
    /// the caller must write back (DBI-eviction rinse).
    pub fn insert(&mut self, line: LineAddr) -> Option<Vec<LineAddr>> {
        let key = self.map.key(line);
        if let Some(blocks) = self.rows.get_mut(&key) {
            if !blocks.contains(&line) {
                blocks.push(line);
            }
            return None;
        }
        let evicted = if self.rows.len() >= self.capacity {
            let old_key = self.order.pop_front().expect("order tracks rows");
            self.rows.remove(&old_key)
        } else {
            None
        };
        let mut blocks = self.fresh_blocks();
        blocks.push(line);
        self.rows.insert(key, blocks);
        self.order.push_back(key);
        evicted
    }

    /// Allocation-free [`DirtyBlockIndex::insert`]: appends any evicted
    /// row's blocks to `rinse_out` (without clearing it) and reclaims the
    /// row's vector internally. Returns whether a row was evicted.
    pub fn insert_into(&mut self, line: LineAddr, rinse_out: &mut Vec<LineAddr>) -> bool {
        match self.insert(line) {
            Some(evicted) => {
                rinse_out.extend_from_slice(&evicted);
                self.reclaim(evicted);
                true
            }
            None => false,
        }
    }

    /// Records that `line` is no longer dirty (written back or evicted
    /// individually).
    pub fn remove(&mut self, line: LineAddr) {
        let key = self.map.key(line);
        if let Some(blocks) = self.rows.get_mut(&key) {
            blocks.retain(|l| *l != line);
            if blocks.is_empty() {
                self.rows.remove(&key);
                self.order.retain(|k| *k != key);
            }
        }
    }

    /// Removes and returns every tracked dirty block in `line`'s row
    /// (including `line` itself if tracked) — the rinse set.
    ///
    /// The returned vector leaves the internal pool for good; hot paths
    /// should prefer [`DirtyBlockIndex::take_row_of_into`].
    pub fn take_row_of(&mut self, line: LineAddr) -> Vec<LineAddr> {
        let key = self.map.key(line);
        match self.rows.remove(&key) {
            Some(blocks) => {
                self.order.retain(|k| *k != key);
                blocks
            }
            None => Vec::new(),
        }
    }

    /// Allocation-free [`DirtyBlockIndex::take_row_of`]: appends the rinse
    /// set to `out` (without clearing it) and reclaims the row's vector
    /// internally.
    pub fn take_row_of_into(&mut self, line: LineAddr, out: &mut Vec<LineAddr>) {
        let key = self.map.key(line);
        if let Some(blocks) = self.rows.remove(&key) {
            self.order.retain(|k| *k != key);
            out.extend_from_slice(&blocks);
            self.reclaim(blocks);
        }
    }

    /// Number of rows currently tracked.
    #[must_use]
    pub fn tracked_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total dirty blocks currently tracked.
    #[must_use]
    pub fn tracked_blocks(&self) -> usize {
        self.rows.values().map(Vec::len).sum()
    }

    /// Forgets everything (used after a bulk flush).
    pub fn clear(&mut self) {
        self.rows.clear();
        self.order.clear();
    }

    /// Every tracked dirty block, in unspecified order; callers needing
    /// determinism must sort.
    pub fn iter_blocks(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.rows.values().flatten().copied()
    }
}

impl Sentinel for DirtyBlockIndex {
    fn check_invariants(&self, component: &str, out: &mut Vec<InvariantViolation>) {
        if self.rows.len() > self.capacity {
            out.push(InvariantViolation {
                component: component.to_string(),
                invariant: "dbi_row_capacity",
                detail: format!(
                    "{} tracked rows > capacity {}",
                    self.rows.len(),
                    self.capacity
                ),
            });
        }
        // The FIFO eviction order must index exactly the tracked rows.
        if self.order.len() != self.rows.len()
            || self.order.iter().any(|k| !self.rows.contains_key(k))
        {
            out.push(InvariantViolation {
                component: component.to_string(),
                invariant: "dbi_order_index",
                detail: format!(
                    "eviction order tracks {} rows but the index holds {}",
                    self.order.len(),
                    self.rows.len()
                ),
            });
        }
        if self.rows.values().any(Vec::is_empty) {
            out.push(InvariantViolation {
                component: component.to_string(),
                invariant: "dbi_empty_row",
                detail: "a tracked row has no dirty blocks".to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> RowMap {
        RowMap::new(1, 2) // 2 channels, 4-line rows
    }

    #[test]
    fn groups_lines_by_row() {
        let mut dbi = DirtyBlockIndex::new(4, map());
        // Channel 0: lines 0, 2, 4, 6 are columns of row 0.
        dbi.insert(LineAddr(0));
        dbi.insert(LineAddr(2));
        dbi.insert(LineAddr(4));
        assert_eq!(dbi.tracked_rows(), 1);
        let mut rinse = dbi.take_row_of(LineAddr(6));
        rinse.sort();
        assert_eq!(rinse, vec![LineAddr(0), LineAddr(2), LineAddr(4)]);
        assert_eq!(dbi.tracked_rows(), 0);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut dbi = DirtyBlockIndex::new(4, map());
        dbi.insert(LineAddr(0));
        dbi.insert(LineAddr(0));
        assert_eq!(dbi.tracked_blocks(), 1);
    }

    #[test]
    fn remove_clears_empty_rows() {
        let mut dbi = DirtyBlockIndex::new(4, map());
        dbi.insert(LineAddr(0));
        dbi.remove(LineAddr(0));
        assert_eq!(dbi.tracked_rows(), 0);
        assert!(dbi.take_row_of(LineAddr(0)).is_empty());
    }

    #[test]
    fn capacity_eviction_returns_victim_row() {
        let mut dbi = DirtyBlockIndex::new(2, map());
        // Three distinct rows in channel 0: rows differ every 8 lines
        // (2 channels x 4 columns).
        assert!(dbi.insert(LineAddr(0)).is_none());
        assert!(dbi.insert(LineAddr(8)).is_none());
        let evicted = dbi.insert(LineAddr(16)).expect("row evicted");
        assert_eq!(evicted, vec![LineAddr(0)]);
        assert_eq!(dbi.tracked_rows(), 2);
    }

    #[test]
    fn different_channels_are_different_rows() {
        let mut dbi = DirtyBlockIndex::new(4, map());
        dbi.insert(LineAddr(0)); // channel 0
        dbi.insert(LineAddr(1)); // channel 1
        assert_eq!(dbi.tracked_rows(), 2);
    }

    #[test]
    fn clear_forgets_everything() {
        let mut dbi = DirtyBlockIndex::new(4, map());
        dbi.insert(LineAddr(0));
        dbi.insert(LineAddr(1));
        dbi.clear();
        assert_eq!(dbi.tracked_rows(), 0);
        assert_eq!(dbi.tracked_blocks(), 0);
    }
}
