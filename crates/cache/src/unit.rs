use crate::config::{CacheConfig, LevelPolicy};
use crate::dbi::DirtyBlockIndex;
use crate::mshr::{MshrReject, MshrTable};
use crate::predictor::PcPredictor;
use crate::stats::CacheStats;
use crate::tags::{LineState, TagArray, Victim};
use miopt_engine::sentinel::{InvariantViolation, Sentinel};
use miopt_engine::{Cycle, LineAddr, MemReq, MemResp, ReqId, TimedQueue};

/// What the cache did with an accepted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Load hit; a response was pushed to the upstream queue.
    Hit,
    /// Load merged into an outstanding miss; it will be answered by the
    /// fill.
    Merged,
    /// Load miss; the line was allocated (busy) and the request forwarded.
    MissForwarded,
    /// Load forwarded without allocation (disabled level, predictor bypass,
    /// or allocation bypass).
    BypassForwarded,
    /// Store absorbed into a (now dirty) line; nothing forwarded.
    StoreAbsorbed,
    /// Store forwarded downstream (write-through or bypass).
    StoreForwarded,
}

/// Why the cache could not accept a request this cycle. The caller must
/// leave the request at the head of its queue and retry next cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Blocked {
    /// MSHR table has no free entry.
    MshrFull,
    /// Every way of the target set holds a pending line (allocation
    /// blocking — removed by the allocation-bypass optimization).
    SetBusy,
    /// The line is pending but its merge list is full.
    MergeFull,
    /// Not enough room in the downstream queue for the requests this
    /// access must emit (forward and/or writeback).
    OutQueueFull,
    /// No room in the upstream response queue for a hit response.
    RespQueueFull,
    /// Tag-port budget for this cycle is exhausted.
    PortBusy,
}

/// One physical cache: an L1 (per compute unit) or one slice of the shared
/// L2, depending on the [`CacheConfig`] and [`LevelPolicy`] it is built
/// with.
///
/// See the crate-level documentation for the driving protocol.
#[derive(Debug)]
pub struct CacheUnit {
    cfg: CacheConfig,
    policy: LevelPolicy,
    tags: TagArray,
    mshr: MshrTable,
    dbi: Option<DirtyBlockIndex>,
    predictor: Option<PcPredictor>,
    stats: CacheStats,
    wb_counter: u64,
    wb_base: u64,
    port_cycle: Cycle,
    port_used: u32,
    pending_flush: Vec<LineAddr>,
    replay: std::collections::VecDeque<MemReq>,
    /// Reusable buffer for DBI rinse sets (kept empty between calls).
    row_scratch: Vec<LineAddr>,
}

/// Capacity of the miss-replay buffer (requests set aside while blocked on
/// cache resources, letting younger requests proceed).
const REPLAY_CAPACITY: usize = 4;

impl CacheUnit {
    /// Builds a cache. `instance` must be unique among all caches in the
    /// system (it namespaces writeback request ids).
    ///
    /// # Panics
    ///
    /// Panics if the configuration or policy is invalid (see
    /// [`CacheConfig::validate`] and [`LevelPolicy::validate`]).
    #[must_use]
    pub fn new(cfg: CacheConfig, policy: LevelPolicy, instance: u32) -> CacheUnit {
        cfg.validate().expect("invalid cache config");
        policy.validate().expect("invalid level policy");
        if let Some(p) = policy.partition {
            p.validate(cfg.ways).expect("invalid way partition");
        }
        let dbi = if policy.rinse {
            let map = policy.row_map.expect("validated above");
            Some(DirtyBlockIndex::new(cfg.dbi_rows.max(1), map))
        } else {
            None
        };
        let predictor = policy.pc_bypass.clone().map(PcPredictor::new);
        CacheUnit {
            tags: TagArray::new(cfg.sets, cfg.ways, cfg.index_low_bits, cfg.index_skip_bits),
            mshr: MshrTable::new(
                cfg.mshr_entries,
                cfg.mshr_merge_cap,
                cfg.sets,
                cfg.index_low_bits,
                cfg.index_skip_bits,
            ),
            dbi,
            predictor,
            stats: CacheStats::default(),
            wb_counter: 0,
            wb_base: (1 << 62) | (u64::from(instance) << 32),
            port_cycle: Cycle::ZERO,
            port_used: 0,
            pending_flush: Vec::new(),
            replay: std::collections::VecDeque::with_capacity(REPLAY_CAPACITY),
            row_scratch: Vec::with_capacity(16),
            cfg,
            policy,
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The level policy in force.
    #[must_use]
    pub fn policy(&self) -> &LevelPolicy {
        &self.policy
    }

    /// Replaces the level policy in force.
    ///
    /// Meant for kernel boundaries in multi-tenant serving, where a
    /// drained, flushed and self-invalidated cache switches to the next
    /// tenant's policy. The dirty-block index is rebuilt when the rinse
    /// configuration changes, and the PC predictor when the predictor
    /// configuration changes; an unchanged predictor keeps its training
    /// (a partition or store-policy switch alone does not reset it).
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid or its partition does not fit
    /// this cache's geometry, or if the cache is busy (outstanding
    /// fills, parked replays, or an in-progress flush) — callers switch
    /// policies only at drained kernel boundaries.
    pub fn set_policy(&mut self, policy: LevelPolicy) {
        policy.validate().expect("invalid level policy");
        if let Some(p) = policy.partition {
            p.validate(self.cfg.ways).expect("invalid way partition");
        }
        assert!(!self.busy(), "set_policy while cache busy");
        if policy.rinse != self.policy.rinse || policy.row_map != self.policy.row_map {
            self.dbi = if policy.rinse {
                let map = policy.row_map.expect("validated above");
                Some(DirtyBlockIndex::new(self.cfg.dbi_rows.max(1), map))
            } else {
                None
            };
        }
        if policy.pc_bypass != self.policy.pc_bypass {
            self.predictor = policy.pc_bypass.clone().map(PcPredictor::new);
        }
        self.policy = policy;
    }

    /// Victim selection honouring the policy's way partition, if any.
    fn find_victim(&self, line: LineAddr) -> Victim {
        match self.policy.partition {
            Some(p) => self.tags.find_victim_in(line, p.first, p.count),
            None => self.tags.find_victim(line),
        }
    }

    /// The PC predictor, if the policy enables one.
    #[must_use]
    pub fn predictor(&self) -> Option<&PcPredictor> {
        self.predictor.as_ref()
    }

    /// Whether fills are outstanding, replays are parked, or a flush is in
    /// progress.
    #[must_use]
    pub fn busy(&self) -> bool {
        !self.mshr.is_empty() || !self.pending_flush.is_empty() || !self.replay.is_empty()
    }

    /// The earliest cycle at or after `now` at which this cache might act
    /// on its own, or `None` if it only reacts to queue traffic.
    ///
    /// Parked replays and an in-progress flush retry every cycle, so they
    /// pin the event to `now`. Outstanding MSHR entries do *not*: their
    /// fills arrive through timed queues whose own deadlines drive the
    /// event wheel.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.replay.is_empty() || !self.pending_flush.is_empty() {
            Some(now)
        } else {
            None
        }
    }

    /// Services the cache's input queue for one cycle, including the
    /// miss-replay discipline of real GPU cache pipelines: a request
    /// blocked on cache *resources* (all ways busy, MSHRs full, merge list
    /// full) is parked in a small replay buffer so younger requests can
    /// proceed, and is retried with priority on later cycles.
    ///
    /// This out-of-order replay is what turns cache-resource contention
    /// into DRAM row-locality disruption for streaming workloads (paper
    /// Section VI.C.2) — and what the allocation-bypass optimization
    /// largely eliminates, by converting would-block requests to bypasses
    /// instead of parking them.
    /// Returns whether any request was consumed this cycle (serviced from
    /// the replay buffer or the input queue, or parked for replay).
    pub fn service(
        &mut self,
        now: Cycle,
        input: &mut TimedQueue<MemReq>,
        down: &mut TimedQueue<MemReq>,
        up: &mut TimedQueue<MemResp>,
    ) -> bool {
        let mut acted = false;
        let mut deferred = false;
        for _ in 0..self.cfg.port_width {
            // Parked replays retry with priority, but a still-blocked
            // replay does not stop younger input requests — that
            // overtaking is the whole point of the replay buffer.
            if let Some(&req) = self.replay.front() {
                if self.access(now, req, down, up).is_ok() {
                    self.replay.pop_front();
                    acted = true;
                    continue;
                }
            }
            let Some(&req) = input.ready_front(now) else {
                return acted;
            };
            match self.access(now, req, down, up) {
                Ok(_) => {
                    input.pop_ready(now);
                    acted = true;
                }
                Err(Blocked::SetBusy | Blocked::MshrFull | Blocked::MergeFull)
                    if !deferred && self.replay.len() < REPLAY_CAPACITY =>
                {
                    // Park it; younger requests may overtake.
                    let req = input.pop_ready(now).expect("head was ready");
                    self.replay.push_back(req);
                    deferred = true;
                    acted = true;
                }
                Err(_) => return acted,
            }
        }
        acted
    }

    fn next_wb_id(&mut self) -> ReqId {
        self.wb_counter += 1;
        ReqId(self.wb_base | self.wb_counter)
    }

    fn port_take(&mut self, now: Cycle) -> bool {
        if now != self.port_cycle {
            self.port_cycle = now;
            self.port_used = 0;
        }
        if self.port_used < self.cfg.port_width {
            self.port_used += 1;
            true
        } else {
            false
        }
    }

    /// Presents a request from the upstream queue.
    ///
    /// On `Ok` the request was consumed: the caller pops it and inspects
    /// the [`Outcome`]. On `Err` the caller leaves the request queued and
    /// retries next cycle; stall causes attributable to cache resources
    /// have already been counted.
    ///
    /// # Errors
    ///
    /// Returns the [`Blocked`] reason when the request cannot be serviced
    /// this cycle.
    pub fn access(
        &mut self,
        now: Cycle,
        req: MemReq,
        down: &mut TimedQueue<MemReq>,
        up: &mut TimedQueue<MemResp>,
    ) -> Result<Outcome, Blocked> {
        // A blocked attempt releases its tag-port slot so another request
        // can be tried the same cycle (miss-replay overtaking).
        let saved = (self.port_cycle, self.port_used);
        let result = self.access_inner(now, req, down, up);
        if result.is_err() {
            self.port_cycle = saved.0;
            self.port_used = saved.1;
        }
        result
    }

    fn access_inner(
        &mut self,
        now: Cycle,
        req: MemReq,
        down: &mut TimedQueue<MemReq>,
        up: &mut TimedQueue<MemResp>,
    ) -> Result<Outcome, Blocked> {
        if !self.policy.enabled {
            // Disabled level (Uncached): pure bypass with opportunistic
            // coalescing; backpressure here is bandwidth, not a cache
            // stall, so nothing is counted.
            return if req.is_store {
                self.forward(now, req, down).map(|()| {
                    self.stats.accesses.inc();
                    self.stats.store_bypasses.inc();
                    Outcome::StoreForwarded
                })
            } else {
                self.bypass_load(now, req, down, false)
            };
        }

        if req.is_store {
            self.access_store(now, req, down)
        } else {
            self.access_load(now, req, down, up)
        }
    }

    fn forward(
        &mut self,
        now: Cycle,
        req: MemReq,
        down: &mut TimedQueue<MemReq>,
    ) -> Result<(), Blocked> {
        if !down.can_push() {
            return Err(Blocked::OutQueueFull);
        }
        down.push(now, req).expect("checked can_push");
        Ok(())
    }

    /// Bypass path for loads: merge if the line is pending, track in a free
    /// MSHR entry otherwise, and fall back to untracked forwarding when the
    /// table is full. Never counts a stall unless `count_stalls`.
    fn bypass_load(
        &mut self,
        now: Cycle,
        req: MemReq,
        down: &mut TimedQueue<MemReq>,
        count_stalls: bool,
    ) -> Result<Outcome, Blocked> {
        if self.mshr.get(req.line).is_some() {
            return match self.mshr.merge(req) {
                Ok(()) => {
                    self.stats.accesses.inc();
                    self.stats.load_merges.inc();
                    Ok(Outcome::Merged)
                }
                // Merge list full (or raced removal): forward untracked.
                Err((r, MshrReject::MergeFull)) | Err((r, MshrReject::Full)) => {
                    self.finish_bypass_forward(now, r, down, count_stalls)
                }
            };
        }
        if self.mshr.has_free_entry() {
            if !down.can_push() {
                if count_stalls {
                    self.stats.stall_out_queue.inc();
                }
                return Err(Blocked::OutQueueFull);
            }
            self.mshr.allocate(req, false, None);
            down.push(now, req).expect("checked can_push");
            self.stats.accesses.inc();
            self.stats.load_bypasses.inc();
            return Ok(Outcome::BypassForwarded);
        }
        self.finish_bypass_forward(now, req, down, count_stalls)
    }

    fn finish_bypass_forward(
        &mut self,
        now: Cycle,
        req: MemReq,
        down: &mut TimedQueue<MemReq>,
        count_stalls: bool,
    ) -> Result<Outcome, Blocked> {
        match self.forward(now, req, down) {
            Ok(()) => {
                self.stats.accesses.inc();
                self.stats.load_bypasses.inc();
                Ok(Outcome::BypassForwarded)
            }
            Err(b) => {
                if count_stalls {
                    self.stats.stall_out_queue.inc();
                }
                Err(b)
            }
        }
    }

    fn access_load(
        &mut self,
        now: Cycle,
        req: MemReq,
        down: &mut TimedQueue<MemReq>,
        up: &mut TimedQueue<MemResp>,
    ) -> Result<Outcome, Blocked> {
        if !self.policy.cache_loads || req.kind == miopt_engine::AccessKind::Bypass {
            return self.bypass_load(now, req, down, false);
        }

        if !self.port_take(now) {
            self.stats.stall_port.inc();
            return Err(Blocked::PortBusy);
        }

        // PC-based bypass prediction (loads).
        if let Some(p) = self.predictor.as_mut() {
            if !p.should_cache(req.pc) {
                self.stats.predictor_bypasses.inc();
                return self.bypass_load(now, req, down, true);
            }
        }

        if let Some((set, way)) = self.tags.probe(req.line) {
            match self.tags.line(set, way).state {
                LineState::Valid => {
                    if !up.can_push() {
                        self.stats.stall_out_queue.inc();
                        return Err(Blocked::RespQueueFull);
                    }
                    let pc = self.tags.line(set, way).pc;
                    self.tags.touch(set, way);
                    if let Some(p) = self.predictor.as_mut() {
                        p.train_reuse(pc);
                    }
                    if req.wants_response() {
                        up.push(now, MemResp::for_req(&req))
                            .expect("checked can_push");
                    }
                    self.stats.accesses.inc();
                    self.stats.load_hits.inc();
                    return Ok(Outcome::Hit);
                }
                LineState::Busy => {
                    return match self.mshr.merge(req) {
                        Ok(()) => {
                            self.stats.accesses.inc();
                            self.stats.load_merges.inc();
                            Ok(Outcome::Merged)
                        }
                        Err((_, _)) => {
                            self.stats.stall_merge.inc();
                            Err(Blocked::MergeFull)
                        }
                    };
                }
                LineState::Invalid => unreachable!("probe only returns live lines"),
            }
        }

        // Miss. A bypass entry for the line may still exist (an earlier
        // bypass to the same line): merge into it.
        if self.mshr.get(req.line).is_some() {
            return match self.mshr.merge(req) {
                Ok(()) => {
                    self.stats.accesses.inc();
                    self.stats.load_merges.inc();
                    Ok(Outcome::Merged)
                }
                Err(_) => {
                    self.stats.stall_merge.inc();
                    Err(Blocked::MergeFull)
                }
            };
        }

        if !self.mshr.has_free_entry() {
            self.stats.stall_mshr.inc();
            return Err(Blocked::MshrFull);
        }

        let victim = self.find_victim(req.line);
        if victim == Victim::AllBusy {
            if self.policy.allocation_bypass {
                self.stats.alloc_bypasses.inc();
                return self.bypass_load(now, req, down, true);
            }
            self.stats.stall_set_busy.inc();
            return Err(Blocked::SetBusy);
        }

        let needed_down = 1 + usize::from(matches!(victim, Victim::Dirty(_)));
        if down.free_slots() < needed_down {
            self.stats.stall_out_queue.inc();
            return Err(Blocked::OutQueueFull);
        }

        // Reserve one slot for the miss forward: the rinse may use the rest.
        let way = self.evict(now, victim, req.line, down, 1);
        self.tags
            .install(req.line, way, LineState::Busy, req.pc, false);
        let set = self.tags.set_index(req.line);
        self.mshr.allocate(req, true, Some((set, way)));
        down.push(now, req).expect("checked free_slots");
        self.stats.accesses.inc();
        self.stats.load_misses.inc();
        Ok(Outcome::MissForwarded)
    }

    fn access_store(
        &mut self,
        now: Cycle,
        req: MemReq,
        down: &mut TimedQueue<MemReq>,
    ) -> Result<Outcome, Blocked> {
        if !self.port_take(now) {
            self.stats.stall_port.inc();
            return Err(Blocked::PortBusy);
        }

        let hit = self.tags.probe(req.line);

        if !self.policy.cache_stores {
            // Write-through / no-allocate: invalidate any stale copy and
            // forward. Backpressure here is bandwidth, not a cache stall.
            self.forward(now, req, down)?;
            if let Some((set, way)) = hit {
                if self.tags.line(set, way).state == LineState::Valid {
                    debug_assert!(
                        !self.tags.line(set, way).dirty,
                        "dirty line at write-through level"
                    );
                    self.tags.invalidate(set, way);
                }
            }
            self.stats.accesses.inc();
            self.stats.store_bypasses.inc();
            return Ok(Outcome::StoreForwarded);
        }

        // Write-allocate level (the L2 under CacheRW).
        if let Some((set, way)) = hit {
            match self.tags.line(set, way).state {
                LineState::Valid => {
                    let pc = self.tags.line(set, way).pc;
                    self.tags.touch(set, way);
                    let was_dirty = self.tags.line(set, way).dirty;
                    self.tags.line_mut(set, way).dirty = true;
                    if let Some(p) = self.predictor.as_mut() {
                        p.train_reuse(pc);
                    }
                    if !was_dirty {
                        self.note_dirty(now, req.line, down);
                    }
                    self.stats.accesses.inc();
                    self.stats.store_hits.inc();
                    return Ok(Outcome::StoreAbsorbed);
                }
                LineState::Busy => {
                    // Store to a line with a pending load fill: write
                    // through this one (documented simplification; the data
                    // race is irrelevant without functional data).
                    self.forward(now, req, down)?;
                    self.stats.accesses.inc();
                    self.stats.store_bypasses.inc();
                    return Ok(Outcome::StoreForwarded);
                }
                LineState::Invalid => unreachable!("probe only returns live lines"),
            }
        }

        // Store miss: PC prediction applies here (paper applies PCby to
        // loads *and* stores at the L2).
        if let Some(p) = self.predictor.as_mut() {
            if !p.should_cache(req.pc) {
                self.stats.predictor_bypasses.inc();
                self.forward(now, req, down)?;
                self.stats.accesses.inc();
                self.stats.store_bypasses.inc();
                return Ok(Outcome::StoreForwarded);
            }
        }

        let victim = self.find_victim(req.line);
        if victim == Victim::AllBusy {
            if self.policy.allocation_bypass {
                self.stats.alloc_bypasses.inc();
                self.forward(now, req, down)?;
                self.stats.accesses.inc();
                self.stats.store_bypasses.inc();
                return Ok(Outcome::StoreForwarded);
            }
            self.stats.stall_set_busy.inc();
            return Err(Blocked::SetBusy);
        }

        let needed_down = usize::from(matches!(victim, Victim::Dirty(_)));
        if down.free_slots() < needed_down {
            self.stats.stall_out_queue.inc();
            return Err(Blocked::OutQueueFull);
        }

        let way = self.evict(now, victim, req.line, down, 0);
        self.tags
            .install(req.line, way, LineState::Valid, req.pc, true);
        self.note_dirty(now, req.line, down);
        self.stats.accesses.inc();
        self.stats.store_allocs.inc();
        Ok(Outcome::StoreAbsorbed)
    }

    /// Performs the eviction chosen by `find_victim`, emitting writebacks
    /// (and rinse writebacks) as needed, and returns the freed way.
    /// `reserve` downstream slots are left untouched by rinse writebacks
    /// (the caller still needs them, e.g. for the miss forward).
    fn evict(
        &mut self,
        now: Cycle,
        victim: Victim,
        incoming: LineAddr,
        down: &mut TimedQueue<MemReq>,
        reserve: usize,
    ) -> usize {
        match victim {
            Victim::Free(w) => w,
            Victim::Clean(w) => {
                let (_, referenced, pc) = self.tags.victim_info(incoming, w);
                self.train_eviction(referenced, pc);
                self.stats.evictions_clean.inc();
                w
            }
            Victim::Dirty(w) => {
                let (line, referenced, pc) = self.tags.victim_info(incoming, w);
                self.train_eviction(referenced, pc);
                let id = self.next_wb_id();
                down.push(now, MemReq::writeback(id, line, now))
                    .expect("caller reserved a slot");
                self.stats.writebacks.inc();
                if let Some(dbi) = self.dbi.as_mut() {
                    dbi.remove(line);
                }
                self.rinse_row_of(now, line, down, reserve);
                w
            }
            Victim::AllBusy => unreachable!("caller handles AllBusy"),
        }
    }

    /// Predictor training on eviction: a line never referenced after
    /// insertion is negative evidence for its inserting PC.
    fn train_eviction(&mut self, referenced: bool, pc: miopt_engine::Pc) {
        if let Some(p) = self.predictor.as_mut() {
            if !referenced {
                p.train_no_reuse(pc);
            }
        }
    }

    /// Rinse: write back every other dirty block of the evicted block's
    /// DRAM row (as many as fit downstream), keeping the lines resident
    /// but clean.
    fn rinse_row_of(
        &mut self,
        now: Cycle,
        line: LineAddr,
        down: &mut TimedQueue<MemReq>,
        reserve: usize,
    ) {
        if self.dbi.is_none() {
            return;
        }
        let mut blocks = std::mem::take(&mut self.row_scratch);
        self.dbi
            .as_mut()
            .expect("checked above")
            .take_row_of_into(line, &mut blocks);
        for &b in &blocks {
            if b == line {
                continue;
            }
            if down.free_slots() <= reserve {
                // No room: the block stays dirty; re-track it. An evicted
                // row's tracking is dropped here exactly as before — the
                // lines stay dirty in the tags, just untracked.
                if let Some(dbi) = self.dbi.as_mut() {
                    let mut dropped = Vec::new();
                    let _ = dbi.insert_into(b, &mut dropped);
                }
                continue;
            }
            if let Some((set, way)) = self.tags.probe(b) {
                if self.tags.line(set, way).state == LineState::Valid
                    && self.tags.line(set, way).dirty
                {
                    self.tags.line_mut(set, way).dirty = false;
                    let id = self.next_wb_id();
                    down.push(now, MemReq::writeback(id, b, now))
                        .expect("checked can_push");
                    self.stats.rinse_writebacks.inc();
                }
            }
        }
        blocks.clear();
        self.row_scratch = blocks;
    }

    /// Records a line turning dirty in the DBI, handling capacity
    /// overflow by rinsing the evicted row (best-effort).
    fn note_dirty(&mut self, now: Cycle, line: LineAddr, down: &mut TimedQueue<MemReq>) {
        if self.dbi.is_none() {
            return;
        }
        let mut evicted_row = std::mem::take(&mut self.row_scratch);
        let evicted = self
            .dbi
            .as_mut()
            .expect("checked above")
            .insert_into(line, &mut evicted_row);
        if evicted {
            for &b in &evicted_row {
                if !down.can_push() {
                    continue;
                }
                if let Some((set, way)) = self.tags.probe(b) {
                    if self.tags.line(set, way).state == LineState::Valid
                        && self.tags.line(set, way).dirty
                    {
                        self.tags.line_mut(set, way).dirty = false;
                        let id = self.next_wb_id();
                        down.push(now, MemReq::writeback(id, b, now))
                            .expect("checked can_push");
                        self.stats.rinse_writebacks.inc();
                    }
                }
            }
        }
        evicted_row.clear();
        self.row_scratch = evicted_row;
    }

    /// Delivers a response arriving from below.
    ///
    /// If the response matches an outstanding MSHR entry, the entry's line
    /// (if allocated) turns valid and every waiting load gets a response in
    /// `up`. Otherwise the response passes through untouched.
    ///
    /// # Errors
    ///
    /// Returns the response back when `up` lacks room for all waiters; the
    /// caller retries next cycle.
    pub fn fill(
        &mut self,
        now: Cycle,
        resp: MemResp,
        up: &mut TimedQueue<MemResp>,
    ) -> Result<(), MemResp> {
        let needed = match self.mshr.get(resp.line) {
            Some(e) if e.primary == resp.id => self
                .mshr
                .waiters_of(e)
                .filter(|w| w.wants_response())
                .count(),
            _ => {
                // Pass-through (untracked bypass).
                return if up.can_push() {
                    up.push(now, resp).expect("checked can_push");
                    Ok(())
                } else {
                    Err(resp)
                };
            }
        };
        if up.free_slots() < needed {
            return Err(resp);
        }
        let mut entry = self
            .mshr
            .complete(resp.line, resp.id)
            .expect("checked above");
        if entry.allocates {
            let (set, way) = entry.reserved.expect("allocating entries reserve a way");
            debug_assert_eq!(self.tags.line(set, way).state, LineState::Busy);
            debug_assert_eq!(self.tags.line(set, way).line, resp.line);
            self.tags.line_mut(set, way).state = LineState::Valid;
        }
        while let Some(w) = self.mshr.pop_waiter(&mut entry) {
            if w.wants_response() {
                up.push(now, MemResp::for_req(&w))
                    .expect("checked free_slots");
            }
        }
        self.stats.fills.inc();
        Ok(())
    }

    /// Begins a bulk writeback of all dirty data (the release flush at a
    /// system-scope synchronization point, paper Section III).
    pub fn start_flush(&mut self) {
        debug_assert!(self.pending_flush.is_empty(), "flush already in progress");
        self.pending_flush = self.tags.dirty_lines();
    }

    /// Emits up to `flush_width` flush writebacks into `down`; call once
    /// per cycle until [`CacheUnit::flush_done`].
    pub fn flush_tick(&mut self, now: Cycle, down: &mut TimedQueue<MemReq>) {
        for _ in 0..self.cfg.flush_width {
            if !down.can_push() {
                return;
            }
            let Some(line) = self.pending_flush.pop() else {
                return;
            };
            if let Some((set, way)) = self.tags.probe(line) {
                if self.tags.line(set, way).dirty {
                    self.tags.line_mut(set, way).dirty = false;
                    if let Some(dbi) = self.dbi.as_mut() {
                        dbi.remove(line);
                    }
                    let id = self.next_wb_id();
                    down.push(now, MemReq::writeback(id, line, now))
                        .expect("checked can_push");
                    self.stats.flush_writebacks.inc();
                }
            }
        }
    }

    /// Whether the flush started by [`CacheUnit::start_flush`] has emitted
    /// every writeback.
    #[must_use]
    pub fn flush_done(&self) -> bool {
        self.pending_flush.is_empty()
    }

    /// Flash self-invalidation of all valid data (the acquire at a kernel
    /// boundary, paper Section III). Unreferenced lines train the PC
    /// predictor negatively.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if fills are outstanding or dirty data
    /// remains (drain and flush first).
    pub fn self_invalidate(&mut self) {
        debug_assert!(
            self.mshr.is_empty(),
            "self-invalidate with outstanding fills"
        );
        let mut invalidated = 0u64;
        let mut no_reuse_pcs = Vec::new();
        self.tags.flash_invalidate(|l| {
            invalidated += 1;
            if !l.referenced {
                no_reuse_pcs.push(l.pc);
            }
        });
        if let Some(p) = self.predictor.as_mut() {
            for pc in no_reuse_pcs {
                p.train_no_reuse(pc);
            }
        }
        if let Some(dbi) = self.dbi.as_mut() {
            dbi.clear();
        }
        self.stats.self_invalidations.add(invalidated);
    }

    /// Live valid lines (occupancy, for tests and reporting).
    #[must_use]
    pub fn live_lines(&self) -> usize {
        self.tags.live_count()
    }

    /// Lines awaiting fills.
    #[must_use]
    pub fn busy_lines(&self) -> usize {
        self.tags.busy_count()
    }

    /// Outstanding MSHR entries (distinct miss lines in flight).
    #[must_use]
    pub fn outstanding_misses(&self) -> usize {
        self.mshr.len()
    }

    /// One human-readable description per outstanding MSHR entry, sorted by
    /// line address (stall diagnostics).
    #[must_use]
    pub fn mshr_snapshot(&self) -> Vec<String> {
        let mut entries: Vec<_> = self.mshr.iter().collect();
        entries.sort_by_key(|(line, _)| line.0);
        entries
            .into_iter()
            .map(|(line, e)| {
                format!(
                    "{} primary {:?} waiters {} allocates {}",
                    line,
                    e.primary,
                    e.waiters.len(),
                    e.allocates
                )
            })
            .collect()
    }

    /// Fault-injection hook: leaks a phantom MSHR entry for `line` whose
    /// primary id no fill will ever match.
    ///
    /// With `allocating = true` the entry claims to allocate but reserves
    /// no way, which the sentinel's `mshr_reservation` invariant flags
    /// immediately. With `allocating = false` the entry is structurally
    /// plausible but permanently outstanding, so it wedges the end-of-kernel
    /// drain and exercises the forward-progress watchdog instead.
    ///
    /// Exists solely to validate the sentinel; never called by the
    /// simulator itself.
    pub fn inject_mshr_leak(&mut self, line: LineAddr, allocating: bool) {
        let req = MemReq {
            id: ReqId(u64::MAX),
            line,
            is_store: false,
            kind: miopt_engine::AccessKind::Cached,
            pc: miopt_engine::Pc(0),
            origin: miopt_engine::Origin::Internal,
            issue_cycle: Cycle::ZERO,
        };
        self.mshr.inject_phantom(req, allocating);
    }
}

impl Sentinel for CacheUnit {
    fn check_invariants(&self, component: &str, out: &mut Vec<InvariantViolation>) {
        // MSHR occupancy and per-entry structure.
        if self.mshr.len() > self.mshr.capacity() {
            out.push(InvariantViolation {
                component: component.to_string(),
                invariant: "mshr_occupancy",
                detail: format!(
                    "{} outstanding entries > capacity {}",
                    self.mshr.len(),
                    self.mshr.capacity()
                ),
            });
        }
        let mut entries: Vec<_> = self.mshr.iter().collect();
        entries.sort_by_key(|(line, _)| line.0);
        for (line, e) in entries {
            if e.waiters.len() > self.mshr.merge_cap() {
                out.push(InvariantViolation {
                    component: component.to_string(),
                    invariant: "mshr_merge_occupancy",
                    detail: format!(
                        "line {line}: {} waiters > merge cap {}",
                        e.waiters.len(),
                        self.mshr.merge_cap()
                    ),
                });
            }
            if self.mshr.waiters_of(e).next().map(|w| w.id) != Some(e.primary)
                || self.mshr.waiters_of(e).any(|w| w.line != *line)
            {
                out.push(InvariantViolation {
                    component: component.to_string(),
                    invariant: "mshr_primary",
                    detail: format!(
                        "line {line}: waiter list does not start with primary {:?} \
                         or mixes lines",
                        e.primary
                    ),
                });
            }
            if e.allocates {
                match e.reserved {
                    None => out.push(InvariantViolation {
                        component: component.to_string(),
                        invariant: "mshr_reservation",
                        detail: format!("line {line}: allocating entry reserves no way"),
                    }),
                    Some((set, way)) => {
                        let l = self.tags.line(set, way);
                        if l.state != LineState::Busy || l.line != *line {
                            out.push(InvariantViolation {
                                component: component.to_string(),
                                invariant: "mshr_reservation",
                                detail: format!(
                                    "line {line}: reserved way ({set},{way}) holds \
                                     {:?} {}",
                                    l.state, l.line
                                ),
                            });
                        }
                    }
                }
            }
        }

        // Every busy tag line must be owned by exactly the allocating MSHR
        // entry that reserved it — a busy line with no entry is a lost fill.
        for (set, way, l) in self.tags.iter_live() {
            if l.state != LineState::Busy {
                continue;
            }
            let owned = self
                .mshr
                .get(l.line)
                .is_some_and(|e| e.allocates && e.reserved == Some((set, way)));
            if !owned {
                out.push(InvariantViolation {
                    component: component.to_string(),
                    invariant: "busy_line_tracking",
                    detail: format!(
                        "busy line {} at ({set},{way}) has no owning MSHR entry",
                        l.line
                    ),
                });
            }
        }

        // DBI: internal structure, plus every tracked block must really be
        // a resident dirty line (tracking is conservative by design — dirty
        // lines may be untracked after capacity overflow, but never the
        // reverse).
        if let Some(dbi) = self.dbi.as_ref() {
            dbi.check_invariants(&format!("{component}.dbi"), out);
            let mut blocks: Vec<_> = dbi.iter_blocks().collect();
            blocks.sort();
            for b in blocks {
                let resident_dirty = self.tags.probe(b).is_some_and(|(s, w)| {
                    let l = self.tags.line(s, w);
                    l.state == LineState::Valid && l.dirty
                });
                if !resident_dirty {
                    out.push(InvariantViolation {
                        component: format!("{component}.dbi"),
                        invariant: "dbi_dirty_tracking",
                        detail: format!("tracked block {b} is not a resident dirty line"),
                    });
                }
            }
        }

        if self.replay.len() > REPLAY_CAPACITY {
            out.push(InvariantViolation {
                component: component.to_string(),
                invariant: "replay_occupancy",
                detail: format!(
                    "{} parked replays > capacity {REPLAY_CAPACITY}",
                    self.replay.len()
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RowMap, WayRange};
    use crate::predictor::PredictorConfig;
    use miopt_engine::{AccessKind, Origin, Pc};

    fn load(id: u64, line: u64, pc: u32) -> MemReq {
        MemReq {
            id: ReqId(id),
            line: LineAddr(line),
            is_store: false,
            kind: AccessKind::Cached,
            pc: Pc(pc),
            origin: Origin::Wavefront { cu: 0, slot: 0 },
            issue_cycle: Cycle(0),
        }
    }

    fn store(id: u64, line: u64, pc: u32) -> MemReq {
        MemReq {
            is_store: true,
            ..load(id, line, pc)
        }
    }

    fn queues() -> (TimedQueue<MemReq>, TimedQueue<MemResp>) {
        (TimedQueue::new(64, 0), TimedQueue::new(64, 0))
    }

    fn cache(policy: LevelPolicy) -> CacheUnit {
        CacheUnit::new(CacheConfig::tiny_test(), policy, 0)
    }

    /// First `n` lines mapping to one set of the 4-set tiny cache.
    fn colliding(base: u64, n: usize) -> Vec<u64> {
        let target = crate::tags::set_index_for(LineAddr(base), 4, 31, 0);
        (base..)
            .filter(|l| crate::tags::set_index_for(LineAddr(*l), 4, 31, 0) == target)
            .take(n)
            .collect()
    }

    /// Drives the miss for `line` to completion at `at`: access + fill.
    fn warm_at(
        c: &mut CacheUnit,
        at: Cycle,
        line: u64,
        down: &mut TimedQueue<MemReq>,
        up: &mut TimedQueue<MemResp>,
    ) {
        let r = load(1000 + line, line, 1);
        match c.access(at, r, down, up).unwrap() {
            Outcome::MissForwarded => {
                let fwd = down.pop_ready(at).unwrap();
                c.fill(at, MemResp::for_req(&fwd), up).unwrap();
                up.pop_ready(at).unwrap();
            }
            o => panic!("expected miss, got {o:?}"),
        }
    }

    fn warm(
        c: &mut CacheUnit,
        line: u64,
        down: &mut TimedQueue<MemReq>,
        up: &mut TimedQueue<MemResp>,
    ) {
        warm_at(c, Cycle(0), line, down, up);
    }

    #[test]
    fn cold_miss_then_fill_then_hit() {
        let mut c = cache(LevelPolicy::cache_loads_only());
        let (mut down, mut up) = queues();
        let r = load(1, 8, 7);
        assert_eq!(
            c.access(Cycle(0), r, &mut down, &mut up).unwrap(),
            Outcome::MissForwarded
        );
        assert_eq!(c.busy_lines(), 1);
        let fwd = down.pop_ready(Cycle(0)).unwrap();
        assert_eq!(fwd.id, ReqId(1));
        c.fill(Cycle(5), MemResp::for_req(&fwd), &mut up).unwrap();
        let resp = up.pop_ready(Cycle(5)).unwrap();
        assert_eq!(resp.id, ReqId(1));
        assert_eq!(c.busy_lines(), 0);
        assert_eq!(c.live_lines(), 1);
        // Second access hits.
        assert_eq!(
            c.access(Cycle(6), load(2, 8, 7), &mut down, &mut up)
                .unwrap(),
            Outcome::Hit
        );
        assert_eq!(up.pop_ready(Cycle(6)).unwrap().id, ReqId(2));
        assert_eq!(c.stats().load_hits.get(), 1);
        assert_eq!(c.stats().load_misses.get(), 1);
    }

    #[test]
    fn partition_confines_allocation_but_not_hits() {
        let mut c = cache(LevelPolicy::cache_loads_only());
        let (mut down, mut up) = queues();
        let lines = colliding(8, 3);
        // Unpartitioned warm-up installs lines[0] in way 0.
        warm(&mut c, lines[0], &mut down, &mut up);
        // Tenant switch: confine allocation to way 1 (of 2).
        let mut p = LevelPolicy::cache_loads_only();
        p.partition = Some(WayRange::new(1, 1));
        c.set_policy(p);
        // Probes search every way, so the way-0 resident still hits.
        assert_eq!(
            c.access(Cycle(1), load(1, lines[0], 7), &mut down, &mut up)
                .unwrap(),
            Outcome::Hit
        );
        up.pop_ready(Cycle(1)).unwrap();
        // Two colliding fills now fight over the single partition way:
        // lines[2] evicts lines[1], never the way-0 resident.
        warm_at(&mut c, Cycle(2), lines[1], &mut down, &mut up);
        warm_at(&mut c, Cycle(3), lines[2], &mut down, &mut up);
        assert_eq!(
            c.access(Cycle(4), load(2, lines[0], 7), &mut down, &mut up)
                .unwrap(),
            Outcome::Hit
        );
        up.pop_ready(Cycle(4)).unwrap();
        assert_eq!(
            c.access(Cycle(5), load(3, lines[2], 7), &mut down, &mut up)
                .unwrap(),
            Outcome::Hit
        );
        up.pop_ready(Cycle(5)).unwrap();
        assert_eq!(
            c.access(Cycle(6), load(4, lines[1], 7), &mut down, &mut up)
                .unwrap(),
            Outcome::MissForwarded
        );
    }

    #[test]
    #[should_panic(expected = "set_policy while cache busy")]
    fn set_policy_on_busy_cache_panics() {
        let mut c = cache(LevelPolicy::cache_loads_only());
        let (mut down, mut up) = queues();
        // Outstanding miss fill keeps the cache busy.
        c.access(Cycle(0), load(1, 8, 7), &mut down, &mut up)
            .unwrap();
        c.set_policy(LevelPolicy::cache_loads_only());
    }

    #[test]
    #[should_panic(expected = "invalid way partition")]
    fn oversized_partition_is_rejected() {
        let mut p = LevelPolicy::cache_loads_only();
        p.partition = Some(WayRange::new(0, 3)); // tiny cache: 2 ways
        let _ = cache(p);
    }

    #[test]
    fn set_policy_keeps_unchanged_predictor_and_rebuilds_changed_dbi() {
        let mut p = LevelPolicy::cache_loads_and_stores();
        p.pc_bypass = Some(PredictorConfig::paper());
        let mut c = cache(p.clone());
        assert!(c.predictor().is_some());
        assert!(c.dbi.is_none());
        // Partition-only change: predictor instance survives.
        let mut q = p.clone();
        q.partition = Some(WayRange::new(0, 1));
        c.set_policy(q);
        assert!(c.predictor().is_some());
        // Turning rinse on builds a DBI; dropping pc_bypass drops the
        // predictor.
        let mut r = LevelPolicy::cache_loads_and_stores();
        r.rinse = true;
        r.row_map = Some(RowMap::new(0, 2));
        c.set_policy(r);
        assert!(c.predictor().is_none());
        assert!(c.dbi.is_some());
    }

    #[test]
    fn pending_miss_merges_and_fill_answers_all() {
        let mut c = cache(LevelPolicy::cache_loads_only());
        let (mut down, mut up) = queues();
        assert_eq!(
            c.access(Cycle(0), load(1, 8, 7), &mut down, &mut up)
                .unwrap(),
            Outcome::MissForwarded
        );
        assert_eq!(
            c.access(Cycle(1), load(2, 8, 7), &mut down, &mut up)
                .unwrap(),
            Outcome::Merged
        );
        assert_eq!(down.len(), 1, "merged load must not be forwarded");
        let fwd = down.pop_ready(Cycle(1)).unwrap();
        c.fill(Cycle(5), MemResp::for_req(&fwd), &mut up).unwrap();
        let mut ids = vec![
            up.pop_ready(Cycle(5)).unwrap().id.0,
            up.pop_ready(Cycle(5)).unwrap().id.0,
        ];
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(c.stats().load_merges.get(), 1);
    }

    #[test]
    fn disabled_cache_bypasses_and_never_stalls() {
        let mut c = cache(LevelPolicy::disabled());
        let (mut down, mut up) = queues();
        assert_eq!(
            c.access(Cycle(0), load(1, 8, 7), &mut down, &mut up)
                .unwrap(),
            Outcome::BypassForwarded
        );
        // Coalescing still happens on the bypass path.
        assert_eq!(
            c.access(Cycle(0), load(2, 8, 7), &mut down, &mut up)
                .unwrap(),
            Outcome::Merged
        );
        assert_eq!(
            c.access(Cycle(0), store(3, 16, 7), &mut down, &mut up)
                .unwrap(),
            Outcome::StoreForwarded
        );
        assert_eq!(c.live_lines(), 0, "disabled cache must not fill");
        assert_eq!(c.stats().stall_cycles(), 0);
        // Fill passes responses through.
        let fwd = down.pop_ready(Cycle(0)).unwrap();
        c.fill(Cycle(5), MemResp::for_req(&fwd), &mut up).unwrap();
        assert_eq!(c.live_lines(), 0);
        assert_eq!(up.len(), 2); // both coalesced loads answered
    }

    #[test]
    fn all_ways_busy_blocks_without_ab() {
        let mut c = cache(LevelPolicy::cache_loads_only());
        let (mut down, mut up) = queues();
        // tiny_test: 4 sets, 2 ways; three set-colliding lines.
        let l = colliding(4, 3);
        assert!(c
            .access(Cycle(0), load(1, l[0], 7), &mut down, &mut up)
            .is_ok());
        assert!(c
            .access(Cycle(1), load(2, l[1], 7), &mut down, &mut up)
            .is_ok());
        let err = c
            .access(Cycle(2), load(3, l[2], 7), &mut down, &mut up)
            .unwrap_err();
        assert_eq!(err, Blocked::SetBusy);
        assert_eq!(c.stats().stall_set_busy.get(), 1);
    }

    #[test]
    fn allocation_bypass_converts_instead_of_blocking() {
        let mut p = LevelPolicy::cache_loads_only();
        p.allocation_bypass = true;
        let mut c = cache(p);
        let (mut down, mut up) = queues();
        let l = colliding(4, 3);
        assert!(c
            .access(Cycle(0), load(1, l[0], 7), &mut down, &mut up)
            .is_ok());
        assert!(c
            .access(Cycle(1), load(2, l[1], 7), &mut down, &mut up)
            .is_ok());
        assert_eq!(
            c.access(Cycle(2), load(3, l[2], 7), &mut down, &mut up)
                .unwrap(),
            Outcome::BypassForwarded
        );
        assert_eq!(c.stats().alloc_bypasses.get(), 1);
        assert_eq!(c.stats().stall_set_busy.get(), 0);
        assert_eq!(down.len(), 3);
    }

    #[test]
    fn write_through_store_invalidates_stale_copy() {
        let mut c = cache(LevelPolicy::cache_loads_only());
        let (mut down, mut up) = queues();
        warm(&mut c, 8, &mut down, &mut up);
        assert_eq!(c.live_lines(), 1);
        assert_eq!(
            c.access(Cycle(10), store(5, 8, 9), &mut down, &mut up)
                .unwrap(),
            Outcome::StoreForwarded
        );
        assert_eq!(c.live_lines(), 0, "stale copy must be invalidated");
        assert_eq!(down.len(), 1); // the store went downstream
    }

    #[test]
    fn store_allocates_dirty_at_rw_level_and_flushes() {
        let mut c = cache(LevelPolicy::cache_loads_and_stores());
        let (mut down, mut up) = queues();
        assert_eq!(
            c.access(Cycle(0), store(1, 8, 9), &mut down, &mut up)
                .unwrap(),
            Outcome::StoreAbsorbed
        );
        assert_eq!(down.len(), 0, "absorbed store generates no traffic");
        // Second store to the same line coalesces (write hit).
        assert_eq!(
            c.access(Cycle(1), store(2, 8, 9), &mut down, &mut up)
                .unwrap(),
            Outcome::StoreAbsorbed
        );
        assert_eq!(c.stats().store_hits.get(), 1);
        // Flush writes the line back exactly once.
        c.start_flush();
        while !c.flush_done() {
            c.flush_tick(Cycle(10), &mut down);
        }
        assert_eq!(c.stats().flush_writebacks.get(), 1);
        let wb = down.pop_ready(Cycle(10)).unwrap();
        assert!(wb.is_store);
        assert_eq!(wb.line, LineAddr(8));
        // Now clean: self-invalidation is legal.
        c.self_invalidate();
        assert_eq!(c.live_lines(), 0);
    }

    #[test]
    fn dirty_eviction_emits_writeback() {
        let mut c = cache(LevelPolicy::cache_loads_and_stores());
        let (mut down, mut up) = queues();
        // Fill one set with dirty stores, then force a third allocation.
        let l = colliding(4, 3);
        c.access(Cycle(0), store(1, l[0], 9), &mut down, &mut up)
            .unwrap();
        c.access(Cycle(1), store(2, l[1], 9), &mut down, &mut up)
            .unwrap();
        c.access(Cycle(2), store(3, l[2], 9), &mut down, &mut up)
            .unwrap();
        assert_eq!(c.stats().writebacks.get(), 1);
        let wb = down.pop_ready(Cycle(2)).unwrap();
        assert!(wb.is_store);
        assert_eq!(wb.line, LineAddr(l[0]), "LRU dirty line written back");
    }

    #[test]
    fn self_invalidate_forces_remisses() {
        let mut c = cache(LevelPolicy::cache_loads_only());
        let (mut down, mut up) = queues();
        warm(&mut c, 8, &mut down, &mut up);
        c.self_invalidate();
        assert_eq!(
            c.access(Cycle(20), load(9, 8, 7), &mut down, &mut up)
                .unwrap(),
            Outcome::MissForwarded
        );
        assert_eq!(c.stats().self_invalidations.get(), 1);
    }

    #[test]
    fn rinse_writes_back_whole_row() {
        let mut p = LevelPolicy::cache_loads_and_stores();
        p.rinse = true;
        // RowMap with 0 channel bits, 2 column bits: rows are 4 consecutive
        // lines. Lines 0..4 share a row but map to sets 0..4 (no set
        // conflict).
        p.row_map = Some(RowMap::new(0, 2));
        let mut c = cache(p);
        let (mut down, mut up) = queues();
        for (i, line) in [0u64, 1, 2, 3].iter().enumerate() {
            c.access(
                Cycle(i as u64),
                store(i as u64, *line, 9),
                &mut down,
                &mut up,
            )
            .unwrap();
        }
        // Two more dirty lines that collide with line 0's set force its
        // eviction (LRU dirty) and must rinse lines 1..3 (same DRAM row
        // as line 0, RowMap(0, 2)).
        let l = colliding(0, 3);
        assert_eq!(l[0], 0);
        assert!(
            l[1] > 3 && l[2] > 3,
            "colliders must be outside row 0: {l:?}"
        );
        c.access(Cycle(4), store(10, l[1], 9), &mut down, &mut up)
            .unwrap();
        c.access(Cycle(5), store(11, l[2], 9), &mut down, &mut up)
            .unwrap();
        assert_eq!(c.stats().writebacks.get(), 1);
        assert_eq!(
            c.stats().rinse_writebacks.get(),
            3,
            "lines 1,2,3 rinsed with 0"
        );
        // Rinsed lines remain resident (clean).
        assert!(c.live_lines() >= 4);
    }

    #[test]
    fn pc_predictor_learns_to_bypass_streaming_pc() {
        let mut p = LevelPolicy::cache_loads_only();
        p.pc_bypass = Some(PredictorConfig {
            sample_period: 0,
            ..PredictorConfig::paper()
        });
        let mut c = cache(p);
        let (mut down, mut up) = queues();
        // Stream distinct lines from one PC; evictions train no-reuse.
        let mut id = 0u64;
        for round in 0..20u64 {
            let line = round * 4; // all map to set 0 -> constant eviction
            id += 1;
            let r = load(id, line, 42);
            match c.access(Cycle(round), r, &mut down, &mut up) {
                Ok(Outcome::MissForwarded) => {
                    let fwd = down.pop_ready(Cycle(round)).unwrap();
                    c.fill(Cycle(round), MemResp::for_req(&fwd), &mut up)
                        .unwrap();
                    up.pop_ready(Cycle(round)).unwrap();
                }
                Ok(Outcome::BypassForwarded) => {
                    let fwd = down.pop_ready(Cycle(round)).unwrap();
                    c.fill(Cycle(round), MemResp::for_req(&fwd), &mut up)
                        .unwrap();
                    up.pop_ready(Cycle(round)).unwrap();
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(
            c.stats().predictor_bypasses.get() > 0,
            "streaming PC should learn to bypass: {:?}",
            c.stats()
        );
    }

    #[test]
    fn fill_without_entry_passes_through() {
        let mut c = cache(LevelPolicy::cache_loads_only());
        let (_, mut up) = queues();
        let resp = MemResp {
            id: ReqId(77),
            line: LineAddr(8),
            origin: Origin::Wavefront { cu: 1, slot: 2 },
        };
        c.fill(Cycle(0), resp, &mut up).unwrap();
        assert_eq!(up.pop_ready(Cycle(0)).unwrap().id, ReqId(77));
        assert_eq!(c.live_lines(), 0);
    }

    #[test]
    fn mshr_full_blocks_and_counts() {
        let mut c = cache(LevelPolicy::cache_loads_only());
        let (mut down, mut up) = queues();
        // tiny_test: 4 MSHR entries; use 4 different sets to avoid SetBusy.
        for (i, line) in [0u64, 1, 2, 3].iter().enumerate() {
            c.access(
                Cycle(i as u64),
                load(i as u64, *line, 7),
                &mut down,
                &mut up,
            )
            .unwrap();
        }
        let err = c
            .access(Cycle(1), load(9, 20, 7), &mut down, &mut up)
            .unwrap_err();
        assert_eq!(err, Blocked::MshrFull);
        assert_eq!(c.stats().stall_mshr.get(), 1);
    }

    #[test]
    fn service_parks_blocked_requests_and_lets_younger_overtake() {
        // 2-way tiny cache: two misses fill a set; a third load to the
        // same set parks in the replay buffer and a younger load to a
        // different set proceeds past it.
        let mut c = cache(LevelPolicy::cache_loads_only());
        let (mut down, mut up) = queues();
        let mut input: TimedQueue<MemReq> = TimedQueue::new(16, 0);
        let l = colliding(4, 3);
        let other_set = (l[2] + 1..)
            .find(|x| {
                crate::tags::set_index_for(LineAddr(*x), 4, 31, 0)
                    != crate::tags::set_index_for(LineAddr(l[0]), 4, 31, 0)
            })
            .unwrap();
        for (i, line) in [l[0], l[1], l[2], other_set].iter().enumerate() {
            input.push(Cycle(0), load(i as u64, *line, 7)).unwrap();
        }
        for cyc in 0..8 {
            c.service(Cycle(cyc), &mut input, &mut down, &mut up);
        }
        // The set-conflicting load is parked, the other-set load got out.
        let forwarded: Vec<u64> = down.drain_all().map(|r| r.line.0).collect();
        assert!(
            forwarded.contains(&other_set),
            "younger request overtook: {forwarded:?}"
        );
        assert!(!forwarded.contains(&l[2]), "blocked request stays parked");
        assert!(c.busy(), "replay entry pending");
        assert!(c.stats().stall_set_busy.get() > 0);
    }

    #[test]
    fn parked_replays_complete_after_fills() {
        let mut c = cache(LevelPolicy::cache_loads_only());
        let (mut down, mut up) = queues();
        let mut input: TimedQueue<MemReq> = TimedQueue::new(16, 0);
        let l = colliding(4, 3);
        for (i, line) in l.iter().enumerate() {
            input.push(Cycle(0), load(i as u64, *line, 7)).unwrap();
        }
        // Drive with an ideal memory below.
        let mut now = 0u64;
        while (c.busy() || !input.is_empty()) && now < 10_000 {
            c.service(Cycle(now), &mut input, &mut down, &mut up);
            while let Some(fwd) = down.pop_ready(Cycle(now)) {
                if fwd.wants_response() {
                    let _ = c.fill(Cycle(now), MemResp::for_req(&fwd), &mut up);
                }
            }
            while up.pop_ready(Cycle(now)).is_some() {}
            now += 1;
        }
        assert!(input.is_empty());
        assert!(!c.busy(), "replay drained");
        // All three loads either missed or were answered via replay.
        let s = c.stats();
        assert_eq!(
            s.load_hits.get() + s.load_merges.get() + s.load_misses.get() + s.load_bypasses.get(),
            3
        );
    }

    #[test]
    fn service_never_parks_bandwidth_backpressure() {
        // A full downstream queue is bandwidth backpressure, not a cache
        // resource: the request must stay at the input queue head.
        let mut c = cache(LevelPolicy::cache_loads_only());
        let mut down: TimedQueue<MemReq> = TimedQueue::new(1, 0);
        let mut up: TimedQueue<MemResp> = TimedQueue::new(16, 0);
        let mut input: TimedQueue<MemReq> = TimedQueue::new(16, 0);
        down.push(
            Cycle(0),
            MemReq::writeback(ReqId(99), LineAddr(77), Cycle(0)),
        )
        .unwrap();
        input.push(Cycle(0), load(1, 8, 7)).unwrap();
        c.service(Cycle(0), &mut input, &mut down, &mut up);
        assert_eq!(input.len(), 1, "request stays queued");
        assert!(!c.busy());
    }

    #[test]
    fn sentinel_is_quiet_on_a_healthy_cache() {
        let mut p = LevelPolicy::cache_loads_and_stores();
        p.rinse = true;
        p.row_map = Some(RowMap::new(0, 2));
        let mut c = cache(p);
        let (mut down, mut up) = queues();
        let mut out = Vec::new();
        for i in 0..12u64 {
            let _ = c.access(Cycle(i), load(i, i * 3, 7), &mut down, &mut up);
            let _ = c.access(Cycle(i), store(100 + i, i * 5, 9), &mut down, &mut up);
            while let Some(fwd) = down.pop_ready(Cycle(i)) {
                if fwd.wants_response() {
                    let _ = c.fill(Cycle(i), MemResp::for_req(&fwd), &mut up);
                }
            }
            while up.pop_ready(Cycle(i)).is_some() {}
            c.check_invariants("l2[0]", &mut out);
            assert!(out.is_empty(), "violations at cycle {i}: {out:?}");
        }
    }

    #[test]
    fn leaked_allocating_mshr_entry_is_caught_and_named() {
        let mut c = cache(LevelPolicy::cache_loads_only());
        c.inject_mshr_leak(LineAddr(8), true);
        let mut out = Vec::new();
        c.check_invariants("l1[3]", &mut out);
        assert_eq!(out.len(), 1, "violations: {out:?}");
        assert_eq!(out[0].component, "l1[3]");
        assert_eq!(out[0].invariant, "mshr_reservation");
        assert!(out[0].detail.contains("reserves no way"));
    }

    #[test]
    fn leaked_bypass_mshr_entry_wedges_but_passes_structural_checks() {
        let mut c = cache(LevelPolicy::cache_loads_only());
        c.inject_mshr_leak(LineAddr(8), false);
        let mut out = Vec::new();
        c.check_invariants("l1[0]", &mut out);
        assert!(out.is_empty(), "structurally plausible leak: {out:?}");
        assert!(c.busy(), "the leak must wedge the drain");
        assert_eq!(c.mshr_snapshot().len(), 1);
        assert!(c.mshr_snapshot()[0].contains("line 0x8"));
    }

    #[test]
    fn dbi_cross_check_catches_phantom_dirty_tracking() {
        let mut p = LevelPolicy::cache_loads_and_stores();
        p.rinse = true;
        p.row_map = Some(RowMap::new(0, 2));
        let mut c = cache(p);
        let (mut down, mut up) = queues();
        c.access(Cycle(0), store(1, 8, 9), &mut down, &mut up)
            .unwrap();
        let mut out = Vec::new();
        c.check_invariants("l2[0]", &mut out);
        assert!(out.is_empty(), "{out:?}");
        // Track a block that is not resident dirty: the forward cross-check
        // must flag it.
        c.dbi.as_mut().unwrap().insert(LineAddr(100));
        c.check_invariants("l2[0]", &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].invariant, "dbi_dirty_tracking");
        assert_eq!(out[0].component, "l2[0].dbi");
    }

    #[test]
    fn port_width_limits_accesses_per_cycle() {
        let mut c = cache(LevelPolicy::cache_loads_only());
        let (mut down, mut up) = queues();
        warm_at(&mut c, Cycle(0), 8, &mut down, &mut up);
        warm_at(&mut c, Cycle(1), 9, &mut down, &mut up);
        // Two hits in the same cycle: second is port-blocked.
        assert!(c
            .access(Cycle(50), load(1, 8, 7), &mut down, &mut up)
            .is_ok());
        assert_eq!(
            c.access(Cycle(50), load(2, 9, 7), &mut down, &mut up)
                .unwrap_err(),
            Blocked::PortBusy
        );
        // Next cycle it goes through.
        assert!(c
            .access(Cycle(51), load(2, 9, 7), &mut down, &mut up)
            .is_ok());
    }
}
