use miopt_engine::{LineAddr, Pc};

/// State of one tag-array entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LineState {
    /// No data.
    Invalid,
    /// Allocated for a pending fill; cannot be evicted (the paper's source
    /// of allocation blocking).
    Busy,
    /// Holds data.
    Valid,
}

/// One tag-array entry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Line {
    pub(crate) line: LineAddr,
    pub(crate) state: LineState,
    /// Epoch stamp implementing zero-cost flash self-invalidation: a Valid
    /// line whose epoch is stale is treated as Invalid.
    pub(crate) epoch: u32,
    pub(crate) dirty: bool,
    /// Whether the line was re-accessed after insertion (trains the PC
    /// predictor on eviction).
    pub(crate) referenced: bool,
    /// PC of the instruction that inserted the line.
    pub(crate) pc: Pc,
    /// LRU stamp.
    pub(crate) last_use: u64,
}

impl Line {
    fn empty() -> Line {
        Line {
            line: LineAddr(0),
            state: LineState::Invalid,
            epoch: 0,
            dirty: false,
            referenced: false,
            pc: Pc(0),
            last_use: 0,
        }
    }
}

/// What `allocate` found to evict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Victim {
    /// An invalid (or epoch-stale) way; no eviction needed.
    Free(usize),
    /// A valid clean line to replace.
    Clean(usize),
    /// A valid dirty line to replace; caller must write it back.
    Dirty(usize),
    /// Every way is busy: allocation would block.
    AllBusy,
}

/// Set index for `line`: keeps the low `low_bits` of the line address,
/// skips the next `skip_bits`, and continues with the bits above.
///
/// With `low_bits >= log2(sets)` this is plain low-bit indexing — what
/// gem5's Ruby caches use, and deliberately kept for the L1: the paper's
/// cache-stall phenomenology (aligned wavefront chunks camping on a few
/// sets, Section VI.C.1) depends on it. For an L2 slice the `skip_bits`
/// excise the slice-selector bits, which are constant within a slice and
/// would otherwise collapse the usable index space.
pub(crate) fn set_index_for(line: LineAddr, sets: usize, low_bits: u32, skip_bits: u32) -> usize {
    let l = line.0 as usize;
    let low = l & ((1usize << low_bits) - 1);
    let high = (l >> (low_bits + skip_bits)) << low_bits;
    (low | high) & (sets - 1)
}

/// A set-associative tag array with epoch-based flash invalidation and LRU
/// replacement.
#[derive(Debug)]
pub(crate) struct TagArray {
    sets: usize,
    ways: usize,
    low_bits: u32,
    skip_bits: u32,
    lines: Vec<Line>,
    epoch: u32,
    use_stamp: u64,
}

impl TagArray {
    pub(crate) fn new(sets: usize, ways: usize, low_bits: u32, skip_bits: u32) -> TagArray {
        TagArray {
            sets,
            ways,
            low_bits,
            skip_bits,
            lines: vec![Line::empty(); sets * ways],
            epoch: 1,
            use_stamp: 0,
        }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        set_index_for(line, self.sets, self.low_bits, self.skip_bits)
    }

    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn is_live(&self, l: &Line) -> bool {
        match l.state {
            LineState::Invalid => false,
            LineState::Busy => true,
            LineState::Valid => l.epoch == self.epoch,
        }
    }

    /// Finds the way holding `line`, if live.
    pub(crate) fn probe(&self, line: LineAddr) -> Option<(usize, usize)> {
        let set = self.set_of(line);
        (0..self.ways).find_map(|w| {
            let l = &self.lines[self.slot(set, w)];
            (self.is_live(l) && l.line == line).then_some((set, w))
        })
    }

    pub(crate) fn line(&self, set: usize, way: usize) -> &Line {
        &self.lines[self.slot(set, way)]
    }

    pub(crate) fn line_mut(&mut self, set: usize, way: usize) -> &mut Line {
        let i = self.slot(set, way);
        &mut self.lines[i]
    }

    /// Records a use of a live line (hit): bumps LRU and the referenced bit.
    pub(crate) fn touch(&mut self, set: usize, way: usize) {
        self.use_stamp += 1;
        let stamp = self.use_stamp;
        let l = self.line_mut(set, way);
        l.last_use = stamp;
        l.referenced = true;
    }

    /// Chooses a victim way for `line`'s set: a dead way if any, else the
    /// LRU clean way, else the LRU dirty way, else reports all-busy.
    pub(crate) fn find_victim(&self, line: LineAddr) -> Victim {
        self.find_victim_in(line, 0, self.ways)
    }

    /// [`TagArray::find_victim`] restricted to ways
    /// `first .. first + count` — the allocation side of QoS
    /// way-partitioning. All-busy means every way *of the partition* is
    /// busy; ways outside it are never candidates.
    pub(crate) fn find_victim_in(&self, line: LineAddr, first: usize, count: usize) -> Victim {
        debug_assert!(count > 0 && first + count <= self.ways);
        let set = self.set_of(line);
        let mut best_clean: Option<(u64, usize)> = None;
        let mut best_dirty: Option<(u64, usize)> = None;
        for w in first..first + count {
            let l = self.line(set, w);
            if !self.is_live(l) {
                return Victim::Free(w);
            }
            match l.state {
                LineState::Busy => {}
                LineState::Valid if l.dirty => {
                    if best_dirty.is_none_or(|(s, _)| l.last_use < s) {
                        best_dirty = Some((l.last_use, w));
                    }
                }
                LineState::Valid => {
                    if best_clean.is_none_or(|(s, _)| l.last_use < s) {
                        best_clean = Some((l.last_use, w));
                    }
                }
                LineState::Invalid => unreachable!("dead lines handled above"),
            }
        }
        if let Some((_, w)) = best_clean {
            Victim::Clean(w)
        } else if let Some((_, w)) = best_dirty {
            Victim::Dirty(w)
        } else {
            Victim::AllBusy
        }
    }

    /// Set index that `line` maps to.
    pub(crate) fn set_index(&self, line: LineAddr) -> usize {
        self.set_of(line)
    }

    /// (address, referenced, inserting pc) of the line at `way` in the set
    /// `incoming` maps to — the victim a caller is about to evict.
    pub(crate) fn victim_info(&self, incoming: LineAddr, way: usize) -> (LineAddr, bool, Pc) {
        let set = self.set_of(incoming);
        let l = self.line(set, way);
        (l.line, l.referenced, l.pc)
    }

    /// Installs `line` in `way` of its set with the given state.
    pub(crate) fn install(
        &mut self,
        line: LineAddr,
        way: usize,
        state: LineState,
        pc: Pc,
        dirty: bool,
    ) {
        let set = self.set_of(line);
        self.use_stamp += 1;
        let stamp = self.use_stamp;
        let epoch = self.epoch;
        let l = self.line_mut(set, way);
        *l = Line {
            line,
            state,
            epoch,
            dirty,
            referenced: false,
            pc,
            last_use: stamp,
        };
    }

    /// Invalidates the entry at (set, way).
    pub(crate) fn invalidate(&mut self, set: usize, way: usize) {
        self.line_mut(set, way).state = LineState::Invalid;
    }

    /// Flash-invalidates every valid line by bumping the epoch, visiting
    /// each live valid line first (for predictor training).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any line is busy or dirty — callers must
    /// drain fills and flush dirty data before self-invalidating (the
    /// system inserts a full barrier at kernel boundaries).
    pub(crate) fn flash_invalidate(&mut self, mut visit: impl FnMut(&Line)) {
        let epoch = self.epoch;
        for l in &self.lines {
            if l.state == LineState::Valid && l.epoch == epoch {
                debug_assert!(!l.dirty, "flash_invalidate with dirty line");
                visit(l);
            }
            debug_assert!(
                l.state != LineState::Busy,
                "flash_invalidate with busy line"
            );
        }
        self.epoch += 1;
    }

    /// Collects every live dirty line (for bulk flush).
    pub(crate) fn dirty_lines(&self) -> Vec<LineAddr> {
        self.lines
            .iter()
            .filter(|l| self.is_live(l) && l.state == LineState::Valid && l.dirty)
            .map(|l| l.line)
            .collect()
    }

    /// Number of live valid lines (testing/occupancy).
    pub(crate) fn live_count(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| self.is_live(l) && l.state == LineState::Valid)
            .count()
    }

    /// Number of busy lines.
    pub(crate) fn busy_count(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| l.state == LineState::Busy)
            .count()
    }

    /// Iterates over `(set, way, line)` for every live entry, in set/way
    /// order (sentinel cross-checks against the MSHR table and DBI).
    pub(crate) fn iter_live(&self) -> impl Iterator<Item = (usize, usize, &Line)> {
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, l)| self.is_live(l))
            .map(|(i, l)| (i / self.ways, i % self.ways, l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags() -> TagArray {
        TagArray::new(4, 2, 31, 0)
    }

    /// First `n` line addresses that map to the same set as `base` in a
    /// `sets`-set array (the hashed-index equivalent of "stride by set
    /// count").
    fn colliding(base: u64, n: usize, sets: usize) -> Vec<u64> {
        let target = set_index_for(LineAddr(base), sets, 31, 0);
        (base..)
            .filter(|l| set_index_for(LineAddr(*l), sets, 31, 0) == target)
            .take(n)
            .collect()
    }

    #[test]
    fn probe_miss_then_hit() {
        let mut t = tags();
        assert!(t.probe(LineAddr(8)).is_none());
        t.install(LineAddr(8), 0, LineState::Valid, Pc(3), false);
        let (set, way) = t.probe(LineAddr(8)).unwrap();
        assert_eq!(set, set_index_for(LineAddr(8), 4, 31, 0));
        assert_eq!(way, 0);
        assert_eq!(t.line(set, way).pc, Pc(3));
    }

    #[test]
    fn same_set_different_tag_misses() {
        let mut t = tags();
        let c = colliding(8, 2, 4);
        t.install(LineAddr(c[0]), 0, LineState::Valid, Pc(0), false);
        assert!(t.probe(LineAddr(c[1])).is_none());
    }

    #[test]
    fn slice_local_index_uses_full_set_space() {
        // An L2 slice only sees lines whose slice-selector bits (5..9 for
        // the Table 1 system) are constant. Skipping them must still cover
        // every set as the slice's line space is swept.
        let mut seen = std::collections::BTreeSet::new();
        for k in 0..4096u64 {
            let line = (k / 32) * 512 + 5 * 32 + (k % 32); // slice 5 lines
            seen.insert(set_index_for(LineAddr(line), 256, 5, 4));
        }
        assert_eq!(seen.len(), 256, "slice-local indexing must cover all sets");
    }

    #[test]
    fn plain_low_bit_indexing_is_gem5_faithful() {
        for l in [0u64, 1, 5, 17, 255] {
            assert_eq!(set_index_for(LineAddr(l), 16, 31, 0), (l % 16) as usize);
        }
    }

    #[test]
    fn victim_prefers_free_then_clean_lru_then_dirty() {
        let mut t = tags();
        let c = colliding(1, 3, 4);
        let set = set_index_for(LineAddr(c[0]), 4, 31, 0);
        // Install one valid line, one way free.
        t.install(LineAddr(c[0]), 0, LineState::Valid, Pc(0), false);
        assert_eq!(t.find_victim(LineAddr(c[1])), Victim::Free(1));
        // Fill both ways: older clean at way 0, newer clean at way 1.
        t.install(LineAddr(c[1]), 1, LineState::Valid, Pc(0), false);
        t.touch(set, 1);
        assert_eq!(t.find_victim(LineAddr(c[2])), Victim::Clean(0));
        // Make way 0 dirty: clean way 1 becomes the victim.
        t.line_mut(set, 0).dirty = true;
        assert_eq!(t.find_victim(LineAddr(c[2])), Victim::Clean(1));
        // Both dirty: LRU dirty.
        t.line_mut(set, 1).dirty = true;
        assert_eq!(t.find_victim(LineAddr(c[2])), Victim::Dirty(0));
        // Both busy: all-busy.
        t.line_mut(set, 0).state = LineState::Busy;
        t.line_mut(set, 1).state = LineState::Busy;
        assert_eq!(t.find_victim(LineAddr(c[2])), Victim::AllBusy);
    }

    #[test]
    fn partitioned_victim_search_ignores_outside_ways() {
        // 4 ways so a 2-way partition leaves real outsiders.
        let mut t = TagArray::new(4, 4, 31, 0);
        let c = colliding(1, 5, 4);
        let set = set_index_for(LineAddr(c[0]), 4, 31, 0);
        // Ways 0 and 1 hold stale-LRU clean lines *outside* the
        // partition; the partition (ways 2..4) is empty.
        t.install(LineAddr(c[0]), 0, LineState::Valid, Pc(0), false);
        t.install(LineAddr(c[1]), 1, LineState::Valid, Pc(0), false);
        assert_eq!(t.find_victim_in(LineAddr(c[2]), 2, 2), Victim::Free(2));
        // Fill the partition with clean lines: the LRU *within* the
        // partition is evicted, never the globally-LRU way 0.
        t.install(LineAddr(c[2]), 2, LineState::Valid, Pc(0), false);
        t.install(LineAddr(c[3]), 3, LineState::Valid, Pc(0), false);
        assert_eq!(t.find_victim_in(LineAddr(c[4]), 2, 2), Victim::Clean(2));
        // Partition all busy => AllBusy even though ways 0/1 are clean.
        t.line_mut(set, 2).state = LineState::Busy;
        t.line_mut(set, 3).state = LineState::Busy;
        assert_eq!(t.find_victim_in(LineAddr(c[4]), 2, 2), Victim::AllBusy);
        // The unrestricted search still sees the clean outsiders.
        assert_eq!(t.find_victim(LineAddr(c[4])), Victim::Clean(0));
    }

    #[test]
    fn flash_invalidate_kills_valid_lines() {
        let mut t = tags();
        t.install(LineAddr(1), 0, LineState::Valid, Pc(0), false);
        t.install(LineAddr(2), 0, LineState::Valid, Pc(0), false);
        let mut visited = 0;
        t.flash_invalidate(|_| visited += 1);
        assert_eq!(visited, 2);
        assert!(t.probe(LineAddr(1)).is_none());
        assert!(t.probe(LineAddr(2)).is_none());
        assert_eq!(t.live_count(), 0);
    }

    #[test]
    fn install_after_flash_is_live() {
        let mut t = tags();
        t.install(LineAddr(1), 0, LineState::Valid, Pc(0), false);
        t.flash_invalidate(|_| {});
        t.install(LineAddr(1), 0, LineState::Valid, Pc(0), false);
        assert!(t.probe(LineAddr(1)).is_some());
    }

    #[test]
    fn dirty_lines_lists_only_dirty() {
        let mut t = tags();
        t.install(LineAddr(1), 0, LineState::Valid, Pc(0), true);
        t.install(LineAddr(2), 0, LineState::Valid, Pc(0), false);
        t.install(LineAddr(3), 0, LineState::Valid, Pc(0), true);
        let mut d = t.dirty_lines();
        d.sort();
        assert_eq!(d, vec![LineAddr(1), LineAddr(3)]);
    }

    #[test]
    fn busy_lines_survive_probe_as_live() {
        let mut t = tags();
        t.install(LineAddr(1), 0, LineState::Busy, Pc(0), false);
        assert!(t.probe(LineAddr(1)).is_some());
        assert_eq!(t.busy_count(), 1);
    }

    #[test]
    fn touch_sets_referenced() {
        let mut t = tags();
        t.install(LineAddr(1), 0, LineState::Valid, Pc(0), false);
        assert!(!t.line(1, 0).referenced);
        t.touch(1, 0);
        assert!(t.line(1, 0).referenced);
    }
}
