//! On-chip interconnect for the `miopt` simulator.
//!
//! The paper's system (Figure 3) connects 64 compute units to 16 L2 slices
//! through a crossbar, and the L2 slices to the directory/memory fabric.
//! This crate provides [`Crossbar`], a generic arbitrated switch between
//! sets of [`TimedQueue`]s, used for both the request network (L1 → L2,
//! routed by address) and the response network (L2 → L1, routed by the
//! requesting CU).
//!
//! The model captures the two properties that matter for the study:
//! per-port bandwidth (at most `per_output` messages delivered to each
//! output per cycle) and FIFO head-of-line blocking at each input (a
//! blocked head stalls everything behind it, as in a real virtual-channel-
//! free switch).
//!
//! # Examples
//!
//! ```
//! use miopt_engine::{Cycle, TimedQueue};
//! use miopt_noc::Crossbar;
//!
//! let mut xbar = Crossbar::new(2, 2, 1);
//! let mut inputs = vec![TimedQueue::new(4, 0), TimedQueue::new(4, 0)];
//! let mut outputs = vec![TimedQueue::new(4, 0), TimedQueue::new(4, 0)];
//! inputs[0].push(Cycle(0), 10u64).unwrap();
//! inputs[1].push(Cycle(0), 11u64).unwrap();
//! // Route odd values to output 1, even to output 0.
//! let moved = xbar.tick(Cycle(0), &mut inputs, &mut outputs, |v| (*v % 2) as usize);
//! assert_eq!(moved, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use miopt_engine::sentinel::{InvariantViolation, Sentinel};
use miopt_engine::stats::Counter;
use miopt_engine::{Cycle, TimedQueue};

/// Statistics of one crossbar.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrossbarStats {
    /// Messages transferred.
    pub moved: Counter,
    /// Input-head observations that could not move (output full or its
    /// per-cycle budget spent).
    pub blocked: Counter,
}

impl CrossbarStats {
    /// All counters as stable `(name, value)` pairs, following the
    /// workspace-wide `to_pairs` stat-name convention.
    #[must_use]
    pub fn to_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![("moved", self.moved.get()), ("blocked", self.blocked.get())]
    }
}

impl miopt_telemetry::StatSnapshot for CrossbarStats {
    fn stat_pairs(&self) -> Vec<(&'static str, u64)> {
        self.to_pairs()
    }
}

/// An input-queued crossbar between `TimedQueue`s.
///
/// Each call to [`Crossbar::tick`] moves at most one message per input and
/// at most `per_output` messages into each output, using a rotating
/// round-robin start position for fairness.
#[derive(Debug)]
pub struct Crossbar {
    inputs: usize,
    outputs: usize,
    per_output: u32,
    rr_start: usize,
    budget: Vec<u32>,
    stats: CrossbarStats,
}

impl Crossbar {
    /// Creates a crossbar for `inputs` input queues and `outputs` output
    /// queues, delivering at most `per_output` messages per output per
    /// cycle.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(inputs: usize, outputs: usize, per_output: u32) -> Crossbar {
        assert!(
            inputs > 0 && outputs > 0,
            "crossbar dimensions must be nonzero"
        );
        assert!(per_output > 0, "per_output must be nonzero");
        Crossbar {
            inputs,
            outputs,
            per_output,
            rr_start: 0,
            budget: vec![0; outputs],
            stats: CrossbarStats::default(),
        }
    }

    /// Moves messages for one cycle. `route` maps a message to its output
    /// port index. Returns the number of messages moved.
    ///
    /// # Panics
    ///
    /// Panics if the queue slices do not match the constructed dimensions,
    /// or `route` returns an out-of-range port.
    pub fn tick<T>(
        &mut self,
        now: Cycle,
        inputs: &mut [TimedQueue<T>],
        outputs: &mut [TimedQueue<T>],
        route: impl Fn(&T) -> usize,
    ) -> u64 {
        self.tick_tracked(now, inputs, outputs, route).0
    }

    /// [`Crossbar::tick`], additionally reporting *which* output ports
    /// received a message this cycle, as a bitmask over port indices —
    /// the event-driven core uses it to wake only the consumers that
    /// actually have new input. Ports at index 64 and above are not
    /// representable in the mask (the modelled networks top out at 64).
    pub fn tick_tracked<T>(
        &mut self,
        now: Cycle,
        inputs: &mut [TimedQueue<T>],
        outputs: &mut [TimedQueue<T>],
        route: impl Fn(&T) -> usize,
    ) -> (u64, u64) {
        assert_eq!(inputs.len(), self.inputs, "input port count mismatch");
        assert_eq!(outputs.len(), self.outputs, "output port count mismatch");
        for b in &mut self.budget {
            *b = self.per_output;
        }
        let n = self.inputs;
        let mut idx = self.rr_start;
        self.rr_start += 1;
        if self.rr_start == n {
            self.rr_start = 0;
        }
        let mut moved = 0;
        let mut pushed = 0u64;
        for _ in 0..n {
            let cur = idx;
            idx += 1;
            if idx == n {
                idx = 0;
            }
            let Some(head) = inputs[cur].ready_front(now) else {
                continue;
            };
            let o = route(head);
            assert!(o < self.outputs, "route returned invalid port {o}");
            if self.budget[o] > 0 && outputs[o].can_push() {
                let msg = inputs[cur].pop_ready(now).expect("head was ready");
                if outputs[o].push(now, msg).is_err() {
                    unreachable!("checked can_push");
                }
                self.budget[o] -= 1;
                moved += 1;
                if o < 64 {
                    pushed |= 1 << o;
                }
            } else {
                self.stats.blocked.inc();
            }
        }
        self.stats.moved.add(moved);
        (moved, pushed)
    }

    /// [`Crossbar::tick_tracked`], scanning only the input ports whose
    /// bit is set in `pending` — the caller's conservative "possibly
    /// nonempty" mask. The contract:
    ///
    /// - the caller sets bit `i` whenever something may have pushed into
    ///   input `i` (spurious sets are harmless);
    /// - this method clears bit `i` when it observes input `i` empty, so
    ///   after a call the set bits are exactly the nonempty inputs;
    /// - a cleared bit promises the input is empty, so the scan skips it.
    ///
    /// Under that contract the result — moves, statistics, round-robin
    /// rotation — is bit-identical to [`Crossbar::tick_tracked`]: empty
    /// inputs contribute nothing to a full scan, and the set bits are
    /// visited in the same rotated order the full scan would use. The
    /// point is cost: a 64-input crossbar with two active CUs touches two
    /// queues instead of sixty-four.
    ///
    /// # Panics
    ///
    /// As [`Crossbar::tick_tracked`]; additionally if the crossbar has
    /// more than 64 inputs (the mask is a `u64`).
    pub fn tick_tracked_masked<T>(
        &mut self,
        now: Cycle,
        pending: &mut u64,
        inputs: &mut [TimedQueue<T>],
        outputs: &mut [TimedQueue<T>],
        route: impl Fn(&T) -> usize,
    ) -> (u64, u64) {
        assert_eq!(inputs.len(), self.inputs, "input port count mismatch");
        assert_eq!(outputs.len(), self.outputs, "output port count mismatch");
        assert!(self.inputs <= 64, "pending mask covers at most 64 inputs");
        for b in &mut self.budget {
            *b = self.per_output;
        }
        let n = self.inputs;
        let start = self.rr_start;
        self.rr_start += 1;
        if self.rr_start == n {
            self.rr_start = 0;
        }
        let live = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let mut moved = 0;
        let mut pushed = 0u64;
        // Round-robin order from `start`: the candidates in [start, n)
        // first, then the wrapped tail [0, start).
        let wrap = (1u64 << start) - 1;
        for mut seg in [*pending & live & !wrap, *pending & live & wrap] {
            while seg != 0 {
                let cur = seg.trailing_zeros() as usize;
                seg &= seg - 1;
                if inputs[cur].is_empty() {
                    *pending &= !(1 << cur);
                    continue;
                }
                let Some(head) = inputs[cur].ready_front(now) else {
                    continue;
                };
                let o = route(head);
                assert!(o < self.outputs, "route returned invalid port {o}");
                if self.budget[o] > 0 && outputs[o].can_push() {
                    let msg = inputs[cur].pop_ready(now).expect("head was ready");
                    if outputs[o].push(now, msg).is_err() {
                        unreachable!("checked can_push");
                    }
                    if inputs[cur].is_empty() {
                        *pending &= !(1 << cur);
                    }
                    self.budget[o] -= 1;
                    moved += 1;
                    if o < 64 {
                        pushed |= 1 << o;
                    }
                } else {
                    self.stats.blocked.inc();
                }
            }
        }
        self.stats.moved.add(moved);
        (moved, pushed)
    }

    /// Advances the round-robin cursor as if [`Crossbar::tick`] had been
    /// called `cycles` times with every input empty or unready. On such a
    /// cycle `tick` moves nothing and touches no statistic, but it still
    /// rotates the arbitration start position; the event-driven fast
    /// forward in `ApuSystem` calls this when it warps time so that a
    /// skipped stretch of idle cycles leaves the arbiter in exactly the
    /// state per-cycle stepping would have.
    pub fn advance_idle_cycles(&mut self, cycles: u64) {
        self.rr_start = (self.rr_start + (cycles % self.inputs as u64) as usize) % self.inputs;
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CrossbarStats {
        &self.stats
    }
}

impl Sentinel for Crossbar {
    fn check_invariants(&self, component: &str, out: &mut Vec<InvariantViolation>) {
        if self.budget.len() != self.outputs {
            out.push(InvariantViolation {
                component: component.to_string(),
                invariant: "budget_dimensions",
                detail: format!(
                    "{} budget slots for {} output ports",
                    self.budget.len(),
                    self.outputs
                ),
            });
        }
        if let Some(b) = self.budget.iter().find(|b| **b > self.per_output) {
            out.push(InvariantViolation {
                component: component.to_string(),
                invariant: "bandwidth_budget",
                detail: format!("port budget {b} exceeds per_output {}", self.per_output),
            });
        }
        if self.rr_start >= self.inputs {
            out.push(InvariantViolation {
                component: component.to_string(),
                invariant: "arbitration_cursor",
                detail: format!(
                    "round-robin start {} out of range for {} inputs",
                    self.rr_start, self.inputs
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queues(n: usize, cap: usize) -> Vec<TimedQueue<u64>> {
        (0..n).map(|_| TimedQueue::new(cap, 0)).collect()
    }

    #[test]
    fn routes_by_function() {
        let mut x = Crossbar::new(1, 4, 1);
        let mut ins = queues(1, 8);
        let mut outs = queues(4, 8);
        for v in [0u64, 1, 2, 3] {
            ins[0].push(Cycle(0), v).unwrap();
        }
        for cycle in 0..4 {
            x.tick(Cycle(cycle), &mut ins, &mut outs, |v| (*v % 4) as usize);
        }
        for (i, out) in outs.iter_mut().enumerate() {
            assert_eq!(out.pop_ready(Cycle(10)), Some(i as u64));
        }
    }

    #[test]
    fn per_output_bandwidth_is_enforced() {
        let mut x = Crossbar::new(4, 1, 2);
        let mut ins = queues(4, 8);
        let mut outs = queues(1, 8);
        for q in ins.iter_mut() {
            q.push(Cycle(0), 0).unwrap();
        }
        let moved = x.tick(Cycle(0), &mut ins, &mut outs, |_| 0);
        assert_eq!(moved, 2, "only per_output messages per cycle");
        let moved = x.tick(Cycle(1), &mut ins, &mut outs, |_| 0);
        assert_eq!(moved, 2);
        assert_eq!(x.stats().moved.get(), 4);
        assert_eq!(x.stats().blocked.get(), 2);
    }

    #[test]
    fn full_output_blocks_input() {
        let mut x = Crossbar::new(1, 1, 4);
        let mut ins = queues(1, 8);
        let mut outs: Vec<TimedQueue<u64>> = vec![TimedQueue::new(1, 0)];
        ins[0].push(Cycle(0), 1).unwrap();
        ins[0].push(Cycle(0), 2).unwrap();
        assert_eq!(x.tick(Cycle(0), &mut ins, &mut outs, |_| 0), 1);
        assert_eq!(
            x.tick(Cycle(1), &mut ins, &mut outs, |_| 0),
            0,
            "output full"
        );
        outs[0].pop_ready(Cycle(1)).unwrap();
        assert_eq!(x.tick(Cycle(2), &mut ins, &mut outs, |_| 0), 1);
    }

    #[test]
    fn round_robin_rotates_fairly() {
        let mut x = Crossbar::new(2, 1, 1);
        let mut ins = queues(2, 8);
        let mut outs = queues(1, 8);
        for _ in 0..4 {
            ins[0].push(Cycle(0), 100).unwrap();
            ins[1].push(Cycle(0), 200).unwrap();
        }
        let mut first_moved = Vec::new();
        for cycle in 0..8 {
            let before = (ins[0].len(), ins[1].len());
            x.tick(Cycle(cycle), &mut ins, &mut outs, |_| 0);
            let after = (ins[0].len(), ins[1].len());
            if before.0 > after.0 {
                first_moved.push(0);
            } else if before.1 > after.1 {
                first_moved.push(1);
            }
        }
        // Both inputs drain completely and service alternates.
        assert_eq!(ins[0].len() + ins[1].len(), 0);
        assert!(first_moved.contains(&0) && first_moved.contains(&1));
    }

    #[test]
    fn unready_heads_are_skipped() {
        let mut x = Crossbar::new(1, 1, 1);
        let mut ins: Vec<TimedQueue<u64>> = vec![TimedQueue::new(8, 5)];
        let mut outs = queues(1, 8);
        ins[0].push(Cycle(0), 1).unwrap(); // ready at cycle 5
        assert_eq!(x.tick(Cycle(0), &mut ins, &mut outs, |_| 0), 0);
        assert_eq!(x.tick(Cycle(5), &mut ins, &mut outs, |_| 0), 1);
    }

    #[test]
    fn sentinel_stays_quiet_across_ticks() {
        let mut x = Crossbar::new(2, 2, 1);
        let mut ins = queues(2, 8);
        let mut outs = queues(2, 8);
        ins[0].push(Cycle(0), 0).unwrap();
        ins[1].push(Cycle(0), 1).unwrap();
        let mut out = Vec::new();
        for cycle in 0..4 {
            x.tick(Cycle(cycle), &mut ins, &mut outs, |v| (*v % 2) as usize);
            x.check_invariants("noc.req", &mut out);
        }
        assert!(out.is_empty(), "violations: {out:?}");
    }

    #[test]
    fn idle_advance_matches_idle_ticks() {
        // N idle ticks and one advance_idle_cycles(N) must leave the
        // arbiter choosing the same input first.
        let mut ticked = Crossbar::new(3, 1, 1);
        let mut warped = Crossbar::new(3, 1, 1);
        let mut ins = queues(3, 8);
        let mut outs = queues(1, 8);
        for cycle in 0..7 {
            ticked.tick(Cycle(cycle), &mut ins, &mut outs, |_| 0);
        }
        warped.advance_idle_cycles(7);
        assert_eq!(ticked.stats().moved.get(), 0, "idle ticks move nothing");
        // Load every input; the first message moved reveals rr_start.
        for q in ins.iter_mut() {
            q.push(Cycle(7), 0).unwrap();
        }
        let lens = |ins: &[TimedQueue<u64>]| ins.iter().map(TimedQueue::len).collect::<Vec<_>>();
        ticked.tick(Cycle(7), &mut ins, &mut outs, |_| 0);
        let after_ticked = lens(&ins);
        for q in ins.iter_mut() {
            while q.pop_ready(Cycle(7)).is_some() {}
            q.push(Cycle(7), 0).unwrap();
        }
        for q in outs.iter_mut() {
            while q.pop_ready(Cycle(7)).is_some() {}
        }
        warped.tick(Cycle(7), &mut ins, &mut outs, |_| 0);
        assert_eq!(after_ticked, lens(&ins));
    }

    #[test]
    fn masked_tick_matches_full_scan() {
        // Same traffic through a masked and an unmasked crossbar must
        // produce identical queue states, stats, and rotation — including
        // unready heads, blocked outputs, and stale-set pending bits on
        // empty inputs.
        let mut full = Crossbar::new(5, 2, 1);
        let mut masked = Crossbar::new(5, 2, 1);
        let mk = || -> Vec<TimedQueue<u64>> {
            (0..5).map(|i| TimedQueue::new(4, (i as u64) % 3)).collect()
        };
        let (mut ins_f, mut ins_m) = (mk(), mk());
        let mut outs_f: Vec<TimedQueue<u64>> = vec![TimedQueue::new(2, 0), TimedQueue::new(1, 0)];
        let mut outs_m: Vec<TimedQueue<u64>> = vec![TimedQueue::new(2, 0), TimedQueue::new(1, 0)];
        // Stale-set bits everywhere; the masked tick must clear them.
        let mut pending = u64::MAX;
        for cycle in 0..24u64 {
            // A deterministic trickle: input (cycle % 5) gets a message
            // on most cycles, routed by value parity.
            if cycle % 4 != 3 {
                let v = cycle * 7;
                let i = (cycle % 5) as usize;
                let _ = ins_f[i].push(Cycle(cycle), v);
                if ins_m[i].push(Cycle(cycle), v).is_ok() {
                    pending |= 1 << i;
                }
            }
            let got_f =
                full.tick_tracked(Cycle(cycle), &mut ins_f, &mut outs_f, |v| (*v % 2) as usize);
            let got_m = masked.tick_tracked_masked(
                Cycle(cycle),
                &mut pending,
                &mut ins_m,
                &mut outs_m,
                |v| (*v % 2) as usize,
            );
            assert_eq!(got_f, got_m, "cycle {cycle}");
            // Drain one output slot every few cycles so blocking both
            // happens and clears.
            if cycle % 3 == 0 {
                assert_eq!(
                    outs_f[1].pop_ready(Cycle(cycle)),
                    outs_m[1].pop_ready(Cycle(cycle))
                );
            }
            for (f, m) in ins_f.iter().zip(&ins_m) {
                assert_eq!(f.len(), m.len(), "cycle {cycle}");
            }
            // Post-tick contract: set bits are exactly the nonempty
            // inputs.
            for (i, q) in ins_m.iter().enumerate() {
                assert_eq!(
                    pending & (1 << i) != 0,
                    !q.is_empty(),
                    "cycle {cycle} input {i}"
                );
            }
        }
        assert_eq!(full.stats(), masked.stats());
    }

    #[test]
    #[should_panic(expected = "input port count mismatch")]
    fn dimension_mismatch_panics() {
        let mut x = Crossbar::new(2, 1, 1);
        let mut ins = queues(1, 4);
        let mut outs = queues(1, 4);
        x.tick(Cycle(0), &mut ins, &mut outs, |_| 0);
    }
}
