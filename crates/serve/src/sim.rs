//! The serving driver: tenants, dispatch loop, and per-tenant results.
//!
//! [`run`] drives one [`ApuSystem`] through a multi-tenant serving
//! scenario. The GPU executes one kernel at a time, so tenants share it
//! at kernel-launch granularity: the dispatcher round-robins over
//! tenants with queued requests, batches each dispatch (work-groups
//! scale with batch size), installs the tenant's cache policy and L2
//! way partition at the idle kernel boundary, and runs the batch to
//! completion through the ordinary phase machine. Gaps with no queued
//! work are crossed with [`ApuSystem::idle_until`], which preserves
//! bit-identity with per-cycle stepping.

use crate::ArrivalSchedule;
use miopt::{ApuSystem, Metrics, PolicyConfig, SimTimeoutError, SystemConfig, WayRange};
use miopt_engine::hash::fnv1a_64;
use miopt_engine::Cycle;
use miopt_telemetry::{LatencyHistogram, StatSnapshot, TelemetryRun};
use miopt_workloads::Workload;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// One tenant of the served system: a model (workload), its cache
/// policy and L2 quota, and its request traffic.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name; must be unique within a [`ServeConfig`].
    pub name: String,
    /// The model this tenant serves — every dispatch launches the
    /// workload's kernels once, batched.
    pub workload: Workload,
    /// Cache policy installed while this tenant's kernels run.
    pub policy: PolicyConfig,
    /// Request arrival schedule (open loop).
    pub schedule: ArrivalSchedule,
    /// L2 ways this tenant may allocate into (`None` = all ways).
    /// Partitions of different tenants must not overlap.
    pub l2_partition: Option<WayRange>,
    /// Most requests folded into one dispatch. Batching multiplies the
    /// kernels' work-groups, trading per-request launch overhead for
    /// queueing delay.
    pub max_batch: u32,
}

/// A complete serving scenario: the machine plus its tenants.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The simulated machine.
    pub system: SystemConfig,
    /// The tenants sharing it (at least one).
    pub tenants: Vec<TenantSpec>,
    /// Absolute cycle budget; exceeding it is a [`ServeError`].
    pub max_cycles: u64,
    /// Force per-cycle stepping (equivalence testing; bit-identical to
    /// the default event-driven skipping).
    pub no_skip: bool,
    /// Run with the sentinel's invariant sweeps and watchdog enabled.
    pub check_invariants: bool,
    /// Sample telemetry every this many cycles.
    pub telemetry_interval: Option<u64>,
}

impl ServeConfig {
    /// Checks the scenario for internal consistency.
    ///
    /// # Errors
    ///
    /// Rejects an empty or duplicate tenant list, a zero batch limit, a
    /// zero cycle budget, and L2 partitions that do not fit the L2 or
    /// overlap another tenant's.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants.is_empty() {
            return Err("a serving scenario needs at least one tenant".to_string());
        }
        if self.max_cycles == 0 {
            return Err("cycle budget must be positive".to_string());
        }
        let ways = self.system.l2.ways;
        for (i, t) in self.tenants.iter().enumerate() {
            if t.name.is_empty() {
                return Err("tenant names must be nonempty".to_string());
            }
            if self.tenants[..i].iter().any(|o| o.name == t.name) {
                return Err(format!("duplicate tenant name {:?}", t.name));
            }
            if t.max_batch == 0 {
                return Err(format!("tenant {:?}: max_batch must be at least 1", t.name));
            }
            if let Some(p) = t.l2_partition {
                p.validate(ways)
                    .map_err(|e| format!("tenant {:?}: {e}", t.name))?;
                for o in &self.tenants[..i] {
                    if let Some(q) = o.l2_partition {
                        if p.first < q.end() && q.first < p.end() {
                            return Err(format!(
                                "tenants {:?} and {:?} have overlapping L2 partitions",
                                o.name, t.name
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// FNV-1a fingerprint of every tenant's name and arrival schedule.
    /// Recorded in sweep provenance and journal fingerprints so that a
    /// resumed sweep provably replays identical traffic.
    #[must_use]
    pub fn arrivals_fingerprint(&self) -> u64 {
        let mut bytes = Vec::new();
        for t in &self.tenants {
            bytes.extend_from_slice(t.name.as_bytes());
            bytes.push(0);
            bytes.extend_from_slice(&t.schedule.hash().to_le_bytes());
        }
        fnv1a_64(&bytes)
    }
}

/// Why a serving run failed.
#[derive(Debug)]
pub enum ServeError {
    /// The scenario failed [`ServeConfig::validate`].
    Config(String),
    /// The simulator halted (cycle budget mid-kernel, or a sentinel
    /// diagnostic).
    Sim(SimTimeoutError),
    /// An arrival lies at or beyond the cycle budget, so the scenario
    /// cannot finish within it.
    Budget {
        /// The configured budget.
        max_cycles: u64,
        /// The offending arrival cycle.
        arrival: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "serve config: {msg}"),
            ServeError::Sim(e) => write!(f, "serve run: {e}"),
            ServeError::Budget {
                max_cycles,
                arrival,
            } => write!(
                f,
                "serve run: arrival at cycle {arrival} is outside the {max_cycles}-cycle budget"
            ),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

/// What one tenant experienced over a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantResult {
    /// Tenant name (copied from the spec).
    pub name: String,
    /// Requests the schedule planned for this tenant.
    pub requested: u64,
    /// Requests that completed within the run.
    pub completed: u64,
    /// Dispatches (batched kernel-sequence launches).
    pub batches: u64,
    /// Individual kernel launches.
    pub kernels: u64,
    /// Cycles during which this tenant's kernels occupied the GPU.
    pub busy_cycles: u64,
    /// Wavefronts this tenant's kernels retired.
    pub wavefronts: u64,
    /// Deepest the tenant's request queue ever got.
    pub queue_peak: u64,
    /// DRAM read bursts attributed to this tenant's dispatches.
    pub dram_reads: u64,
    /// DRAM write bursts attributed to this tenant's dispatches.
    pub dram_writes: u64,
    /// Request-crossbar transfers during this tenant's dispatches.
    pub noc_req_transfers: u64,
    /// Response-crossbar transfers during this tenant's dispatches.
    pub noc_resp_transfers: u64,
    /// End-to-end request latency (arrival to batch completion), in
    /// cycles.
    pub latency: LatencyHistogram,
}

impl TenantResult {
    fn new(spec: &TenantSpec) -> TenantResult {
        TenantResult {
            name: spec.name.clone(),
            requested: spec.schedule.len() as u64,
            completed: 0,
            batches: 0,
            kernels: 0,
            busy_cycles: 0,
            wavefronts: 0,
            queue_peak: 0,
            dram_reads: 0,
            dram_writes: 0,
            noc_req_transfers: 0,
            noc_resp_transfers: 0,
            latency: LatencyHistogram::new(),
        }
    }

    /// Completed requests per million cycles of the whole run.
    #[must_use]
    pub fn throughput_rpmc(&self, run_cycles: u64) -> f64 {
        if run_cycles == 0 {
            0.0
        } else {
            self.completed as f64 / run_cycles as f64 * 1e6
        }
    }

    /// Median request latency in cycles (`None` before any completion).
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.latency.quantile(0.50)
    }

    /// 95th-percentile request latency in cycles.
    #[must_use]
    pub fn p95(&self) -> Option<u64> {
        self.latency.quantile(0.95)
    }

    /// 99th-percentile request latency in cycles.
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.latency.quantile(0.99)
    }
}

impl StatSnapshot for TenantResult {
    fn stat_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("requested", self.requested),
            ("completed", self.completed),
            ("batches", self.batches),
            ("kernels", self.kernels),
            ("busy_cycles", self.busy_cycles),
            ("wavefronts", self.wavefronts),
            ("queue_peak", self.queue_peak),
            ("dram_reads", self.dram_reads),
            ("dram_writes", self.dram_writes),
            ("noc_req_transfers", self.noc_req_transfers),
            ("noc_resp_transfers", self.noc_resp_transfers),
            ("latency_count", self.latency.count()),
        ]
    }
}

/// The outcome of a whole serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResult {
    /// Cycle at which the last dispatch completed.
    pub cycles: u64,
    /// Per-tenant accounting, in tenant declaration order.
    pub tenants: Vec<TenantResult>,
    /// Cumulative machine metrics over the whole run.
    pub metrics: Metrics,
    /// The telemetry time series, when sampling was enabled.
    pub telemetry: Option<TelemetryRun>,
}

/// Book-keeping the dispatcher holds per tenant while running.
struct TenantState {
    next_arrival: usize,
    queue: VecDeque<u64>,
    result: TenantResult,
}

/// Runs the serving scenario to completion.
///
/// # Errors
///
/// Returns [`ServeError::Config`] for an inconsistent scenario,
/// [`ServeError::Budget`] when the schedule extends past the cycle
/// budget, and [`ServeError::Sim`] when a dispatch halts (budget
/// exhausted mid-kernel or a sentinel diagnostic).
pub fn run(cfg: &ServeConfig) -> Result<ServeResult, ServeError> {
    cfg.validate().map_err(ServeError::Config)?;

    let mut sys = ApuSystem::new_idle(cfg.system.clone(), cfg.tenants[0].policy);
    sys.set_time_skip(!cfg.no_skip);
    if let Some(interval) = cfg.telemetry_interval {
        sys.enable_telemetry(interval);
    }
    if cfg.check_invariants {
        sys.enable_sentinel(
            ApuSystem::DEFAULT_CHECK_INTERVAL,
            ApuSystem::DEFAULT_WATCHDOG,
        );
    }

    let mut states: Vec<TenantState> = cfg
        .tenants
        .iter()
        .map(|t| TenantState {
            next_arrival: 0,
            queue: VecDeque::new(),
            result: TenantResult::new(t),
        })
        .collect();

    let mut seq: u32 = 0;
    let mut cursor = 0usize;
    let mut last_completion = 0u64;
    loop {
        let now = sys.now().0;

        // Admit every request that has arrived by now.
        for (spec, st) in cfg.tenants.iter().zip(states.iter_mut()) {
            let arrivals = spec.schedule.arrivals();
            while st.next_arrival < arrivals.len() && arrivals[st.next_arrival] <= now {
                st.queue.push_back(arrivals[st.next_arrival]);
                st.next_arrival += 1;
            }
            st.result.queue_peak = st.result.queue_peak.max(st.queue.len() as u64);
        }

        // Round-robin over tenants with queued work.
        let n = states.len();
        let pick = (0..n)
            .map(|i| (cursor + i) % n)
            .find(|&i| !states[i].queue.is_empty());

        let Some(i) = pick else {
            // Nobody has work: cross the gap to the next arrival, or
            // finish if every schedule is exhausted.
            let next = cfg
                .tenants
                .iter()
                .zip(states.iter())
                .filter_map(|(spec, st)| spec.schedule.arrivals().get(st.next_arrival).copied())
                .min();
            match next {
                Some(cycle) => {
                    if cycle >= cfg.max_cycles {
                        return Err(ServeError::Budget {
                            max_cycles: cfg.max_cycles,
                            arrival: cycle,
                        });
                    }
                    sys.idle_until(Cycle(cycle));
                    continue;
                }
                None => break,
            }
        };
        cursor = (i + 1) % n;

        let spec = &cfg.tenants[i];
        let batch: Vec<u64> = {
            let take = (spec.max_batch as usize).min(states[i].queue.len());
            states[i].queue.drain(..take).collect()
        };

        let before = sys.metrics();
        let (req_before, resp_before) = sys.noc_transfers();
        let busy_start = sys.now().0;

        sys.set_policy_config(&spec.policy, spec.l2_partition);
        for kernel in &spec.workload.launches {
            let mut desc = (**kernel).clone();
            desc.wgs = desc.wgs.saturating_mul(batch.len() as u32);
            sys.enqueue_kernel(Arc::new(desc), seq);
            seq = seq.wrapping_add(1);
        }
        let after = sys
            .run_to_completion(cfg.max_cycles)
            .map_err(ServeError::Sim)?;
        let done = sys.now().0;
        last_completion = done;

        let st = &mut states[i].result;
        for arrival in batch {
            st.latency.record(done - arrival);
            st.completed += 1;
        }
        st.batches += 1;
        st.kernels += spec.workload.launches.len() as u64;
        st.busy_cycles += done - busy_start;
        st.wavefronts += after.gpu.retired_wavefronts - before.gpu.retired_wavefronts;
        st.dram_reads += after.dram.reads.get() - before.dram.reads.get();
        st.dram_writes += after.dram.writes.get() - before.dram.writes.get();
        let (req_after, resp_after) = sys.noc_transfers();
        st.noc_req_transfers += req_after - req_before;
        st.noc_resp_transfers += resp_after - resp_before;
    }

    let metrics = sys.metrics();
    Ok(ServeResult {
        cycles: last_completion,
        tenants: states.into_iter().map(|s| s.result).collect(),
        metrics,
        telemetry: sys.take_telemetry(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use miopt::CachePolicy;
    use miopt_workloads::{by_name, SuiteConfig};

    fn tenant(name: &str, workload: &str, schedule: ArrivalSchedule) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            workload: by_name(&SuiteConfig::quick(), workload).unwrap(),
            policy: PolicyConfig::of(CachePolicy::CacheR),
            schedule,
            l2_partition: None,
            max_batch: 2,
        }
    }

    fn two_tenant_config() -> ServeConfig {
        ServeConfig {
            system: SystemConfig::small_test(),
            tenants: vec![
                TenantSpec {
                    l2_partition: Some(WayRange::new(0, 4)),
                    ..tenant("fw", "FwSoft", ArrivalSchedule::trace(vec![0, 0, 40_000]))
                },
                TenantSpec {
                    l2_partition: Some(WayRange::new(4, 4)),
                    policy: PolicyConfig::of(CachePolicy::CacheRW),
                    ..tenant("bw", "FwPool", ArrivalSchedule::poisson(7, 30_000.0, 3))
                },
            ],
            max_cycles: 200_000_000,
            no_skip: false,
            check_invariants: true,
            telemetry_interval: None,
        }
    }

    #[test]
    fn two_tenants_complete_every_request() {
        let res = run(&two_tenant_config()).unwrap();
        assert_eq!(res.tenants.len(), 2);
        for t in &res.tenants {
            assert_eq!(t.completed, t.requested, "tenant {}", t.name);
            assert_eq!(t.latency.count(), t.completed);
            assert!(t.p50().unwrap() > 0);
            assert!(t.p99().unwrap() >= t.p50().unwrap());
            assert!(t.busy_cycles > 0);
            assert!(t.dram_reads > 0);
            assert!(t.noc_req_transfers > 0);
            assert!(t.throughput_rpmc(res.cycles) > 0.0);
        }
        // The two tenants interleave: both saw GPU time, and the run
        // lasts at least as long as the busiest tenant.
        let busy: u64 = res.tenants.iter().map(|t| t.busy_cycles).sum();
        assert!(res.cycles >= busy / 2);
        // Batching: tenant "fw"'s simultaneous arrivals at cycle 0 fold
        // into one dispatch, so 3 requests take 2 batches.
        assert_eq!(res.tenants[0].batches, 2);
    }

    #[test]
    fn serve_runs_are_deterministic() {
        let a = run(&two_tenant_config()).unwrap();
        let b = run(&two_tenant_config()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn skip_and_no_skip_are_bit_identical() {
        let mut cfg = two_tenant_config();
        cfg.telemetry_interval = Some(10_000);
        let fast = run(&cfg).unwrap();
        cfg.no_skip = true;
        let slow = run(&cfg).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn overlapping_partitions_are_rejected() {
        let mut cfg = two_tenant_config();
        cfg.tenants[1].l2_partition = Some(WayRange::new(3, 2));
        let err = run(&cfg).unwrap_err();
        assert!(matches!(err, ServeError::Config(_)), "{err}");
        assert!(err.to_string().contains("overlapping"));
    }

    #[test]
    fn config_validation_catches_bad_scenarios() {
        let base = two_tenant_config();

        let mut empty = base.clone();
        empty.tenants.clear();
        assert!(empty.validate().is_err());

        let mut dup = base.clone();
        dup.tenants[1].name = "fw".to_string();
        assert!(dup.validate().is_err());

        let mut batch = base.clone();
        batch.tenants[0].max_batch = 0;
        assert!(batch.validate().is_err());

        let mut oversized = base.clone();
        oversized.tenants[0].l2_partition = Some(WayRange::new(4, 8));
        assert!(oversized.validate().is_err());

        assert!(base.validate().is_ok());
    }

    #[test]
    fn budget_too_small_for_schedule_is_a_typed_error() {
        let mut cfg = two_tenant_config();
        cfg.tenants[0].schedule = ArrivalSchedule::trace(vec![0, 500_000]);
        cfg.tenants[1].schedule = ArrivalSchedule::trace(vec![0]);
        cfg.max_cycles = 400_000;
        match run(&cfg) {
            Err(ServeError::Budget { arrival, .. }) => assert_eq!(arrival, 500_000),
            Err(ServeError::Sim(_)) => {} // first dispatches outran the budget
            other => panic!("expected a budget error, got {other:?}"),
        }
    }

    #[test]
    fn arrivals_fingerprint_tracks_traffic() {
        let a = two_tenant_config();
        let mut b = two_tenant_config();
        assert_eq!(a.arrivals_fingerprint(), b.arrivals_fingerprint());
        b.tenants[1].schedule = ArrivalSchedule::poisson(8, 30_000.0, 3);
        assert_ne!(a.arrivals_fingerprint(), b.arrivals_fingerprint());
    }
}
