//! Deterministic open-loop request arrival schedules.
//!
//! A serving tenant's traffic is fixed *before* the simulation starts:
//! either a Poisson process expanded from a seed, or an explicit trace.
//! Pre-generating the whole schedule (rather than drawing arrivals as
//! the simulation advances) keeps the simulator free of hidden RNG state
//! — the schedule is plain data, its FNV-1a hash goes into sweep
//! provenance and journal fingerprints, and a resumed sweep replays
//! byte-identical traffic.

use miopt_engine::hash::fnv1a_64;
use miopt_engine::rng::SplitMix64;

/// A fixed, sorted list of request arrival cycles for one tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalSchedule {
    arrivals: Vec<u64>,
    seed: u64,
}

impl ArrivalSchedule {
    /// A Poisson (memoryless open-loop) schedule: `requests` arrivals
    /// whose inter-arrival gaps are exponentially distributed with the
    /// given mean, drawn from a [`SplitMix64`] stream seeded with
    /// `seed`. The same `(seed, mean, requests)` triple always expands
    /// to the same schedule.
    ///
    /// # Panics
    ///
    /// Panics if `mean_interarrival` is not finite and positive, or if
    /// `requests` is zero.
    #[must_use]
    pub fn poisson(seed: u64, mean_interarrival: f64, requests: usize) -> ArrivalSchedule {
        assert!(
            mean_interarrival.is_finite() && mean_interarrival > 0.0,
            "mean inter-arrival must be finite and positive"
        );
        assert!(requests > 0, "a schedule needs at least one request");
        let mut rng = SplitMix64::new(seed);
        let mut t = 0.0f64;
        let arrivals = (0..requests)
            .map(|_| {
                // Inverse-CDF exponential; next_f64 is in [0, 1) so the
                // argument of ln is in (0, 1].
                t += -(1.0 - rng.next_f64()).ln() * mean_interarrival;
                t as u64
            })
            .collect();
        ArrivalSchedule { arrivals, seed }
    }

    /// An explicit trace of arrival cycles (`seed` is recorded as 0).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or not sorted.
    #[must_use]
    pub fn trace(arrivals: Vec<u64>) -> ArrivalSchedule {
        assert!(
            !arrivals.is_empty(),
            "a schedule needs at least one request"
        );
        assert!(
            arrivals.windows(2).all(|w| w[0] <= w[1]),
            "trace arrivals must be sorted"
        );
        ArrivalSchedule { arrivals, seed: 0 }
    }

    /// Parses a trace file's contents: one arrival cycle per
    /// whitespace-separated token, `#` starting a comment to end of
    /// line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token, an empty
    /// trace, or an unsorted trace.
    pub fn from_trace_text(text: &str) -> Result<ArrivalSchedule, String> {
        let mut arrivals = Vec::new();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("");
            for tok in line.split_whitespace() {
                let cycle: u64 = tok
                    .parse()
                    .map_err(|e| format!("bad arrival cycle {tok:?}: {e}"))?;
                arrivals.push(cycle);
            }
        }
        if arrivals.is_empty() {
            return Err("trace holds no arrivals".to_string());
        }
        if !arrivals.windows(2).all(|w| w[0] <= w[1]) {
            return Err("trace arrivals must be sorted".to_string());
        }
        Ok(ArrivalSchedule { arrivals, seed: 0 })
    }

    /// The arrival cycles, sorted ascending.
    #[must_use]
    pub fn arrivals(&self) -> &[u64] {
        &self.arrivals
    }

    /// Number of scheduled requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the schedule is empty (never true for a validated
    /// schedule; present for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The seed the schedule was expanded from (0 for traces).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// FNV-1a fingerprint of the full schedule (seed and every arrival
    /// cycle) — recorded in provenance and journal fingerprints so a
    /// resumed sweep can prove it is replaying identical traffic.
    #[must_use]
    pub fn hash(&self) -> u64 {
        let mut bytes = Vec::with_capacity(8 * (self.arrivals.len() + 1));
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        for a in &self.arrivals {
            bytes.extend_from_slice(&a.to_le_bytes());
        }
        fnv1a_64(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_sorted() {
        let a = ArrivalSchedule::poisson(42, 1000.0, 50);
        let b = ArrivalSchedule::poisson(42, 1000.0, 50);
        assert_eq!(a, b);
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a.len(), 50);
        assert!(a.arrivals().windows(2).all(|w| w[0] <= w[1]));
        // Mean inter-arrival should be in the right ballpark.
        let span = *a.arrivals().last().unwrap() as f64;
        assert!(span > 10_000.0 && span < 200_000.0, "span {span}");
    }

    #[test]
    fn different_seeds_and_rates_change_the_schedule() {
        let a = ArrivalSchedule::poisson(1, 1000.0, 20);
        let b = ArrivalSchedule::poisson(2, 1000.0, 20);
        let c = ArrivalSchedule::poisson(1, 2000.0, 20);
        assert_ne!(a, b);
        assert_ne!(a.hash(), b.hash());
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn trace_text_parses_comments_and_whitespace() {
        let s = ArrivalSchedule::from_trace_text("# warmup\n0 100\n250 # burst\n\n900\n").unwrap();
        assert_eq!(s.arrivals(), &[0, 100, 250, 900]);
        assert_eq!(s.seed(), 0);
    }

    #[test]
    fn bad_traces_are_rejectededly_described() {
        assert!(ArrivalSchedule::from_trace_text("").is_err());
        assert!(ArrivalSchedule::from_trace_text("# only comments\n").is_err());
        assert!(ArrivalSchedule::from_trace_text("5 3").is_err());
        assert!(ArrivalSchedule::from_trace_text("1 two 3").is_err());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trace_panics() {
        let _ = ArrivalSchedule::trace(vec![5, 3]);
    }
}
