//! `miopt-serve` — multi-tenant inference serving on the simulated APU.
//!
//! The paper's sweeps measure isolated kernel runtime. This crate asks
//! the serving question instead: with several model instances
//! ("tenants") sharing one GPU under open-loop request traffic, which
//! cache policy minimizes *tail latency*? A policy that wins on mean
//! kernel runtime can lose on p99 once queueing amplifies its
//! worst-case kernels.
//!
//! The pieces:
//!
//! * [`ArrivalSchedule`] — deterministic request traffic per tenant:
//!   seeded Poisson or an explicit trace, pre-expanded so the schedule
//!   is plain, hashable data.
//! * [`TenantSpec`] / [`ServeConfig`] — a tenant binds a workload from
//!   `miopt-workloads` to a [`miopt::PolicyConfig`], an optional QoS L2
//!   way partition, and a batching limit.
//! * [`run`] — the dispatcher: admits arrivals, round-robins batched
//!   dispatches across tenants at idle kernel boundaries (the GPU runs
//!   one kernel at a time), installs each tenant's policy and partition
//!   via [`miopt::ApuSystem::set_policy_config`], and crosses idle gaps
//!   with event-driven time skipping. Runs are bit-identical with and
//!   without skipping.
//! * [`TenantResult`] / [`ServeResult`] — per-tenant latency
//!   histograms (p50/p95/p99), throughput, queue depth, and attributed
//!   DRAM and crossbar traffic, exported as `serve.tenant.*` stats.
//!
//! # Example
//!
//! ```
//! use miopt::{CachePolicy, PolicyConfig, SystemConfig, WayRange};
//! use miopt_serve::{run, ArrivalSchedule, ServeConfig, TenantSpec};
//! use miopt_workloads::{by_name, SuiteConfig};
//!
//! let cfg = ServeConfig {
//!     system: SystemConfig::small_test(),
//!     tenants: vec![TenantSpec {
//!         name: "softmax".into(),
//!         workload: by_name(&SuiteConfig::quick(), "FwSoft").unwrap(),
//!         policy: PolicyConfig::of(CachePolicy::CacheR),
//!         schedule: ArrivalSchedule::poisson(1, 50_000.0, 4),
//!         l2_partition: Some(WayRange::new(0, 4)),
//!         max_batch: 2,
//!     }],
//!     max_cycles: 100_000_000,
//!     no_skip: false,
//!     check_invariants: false,
//!     telemetry_interval: None,
//! };
//! let result = run(&cfg).unwrap();
//! let t = &result.tenants[0];
//! assert_eq!(t.completed, 4);
//! println!("p99 latency: {} cycles", t.p99().unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod sim;

pub use arrival::ArrivalSchedule;
pub use sim::{run, ServeConfig, ServeError, ServeResult, TenantResult, TenantSpec};
