//! Quickstart: simulate one MI benchmark under one GPU caching policy and
//! print the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart -- [workload] [policy]
//! cargo run --release --example quickstart -- FwFc CacheR
//! ```

use miopt::{ApuSystem, CachePolicy, PolicyConfig, SystemConfig};
use miopt_workloads::{by_name, SuiteConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let workload_name = args.next().unwrap_or_else(|| "BwBN".to_string());
    let policy = match args.next().as_deref() {
        None | Some("CacheR") => CachePolicy::CacheR,
        Some("Uncached") => CachePolicy::Uncached,
        Some("CacheRW") => CachePolicy::CacheRW,
        Some(other) => panic!("unknown policy {other:?} (Uncached|CacheR|CacheRW)"),
    };

    // The quick suite scale keeps this example under a few seconds; use
    // SuiteConfig::paper() for the full reproduction scale.
    let scale = SuiteConfig::quick();
    let workload = by_name(&scale, &workload_name)
        .unwrap_or_else(|| panic!("unknown workload {workload_name:?}"));

    println!(
        "simulating {} ({} kernels, {:.2} MB footprint) under {policy} on the Table 1 system",
        workload.name,
        workload.total_kernels(),
        workload.footprint_bytes() as f64 / (1024.0 * 1024.0),
    );

    let cfg = SystemConfig::paper_table1();
    let mut sys = ApuSystem::new(cfg, PolicyConfig::of(policy), &workload);
    let m = sys
        .run_to_completion(20_000_000_000)
        .expect("simulation finished");

    println!(
        "execution time      {:>12} cycles ({:.3} ms)",
        m.cycles,
        m.seconds() * 1e3
    );
    println!("compute bandwidth   {:>12.1} GVOPS", m.gvops());
    println!("data bandwidth      {:>12.2} GMR/s", m.gmrs());
    println!("GPU memory requests {:>12}", m.gpu.memory_requests());
    println!("DRAM accesses       {:>12}", m.dram_accesses());
    println!("DRAM row hit ratio  {:>12.1}%", m.row_hit_ratio() * 100.0);
    println!("cache stalls/request{:>12.3}", m.stalls_per_request());
    println!(
        "L1 load hit rate    {:>12.1}%",
        m.l1.load_hit_rate() * 100.0
    );
    println!(
        "L2 load hit rate    {:>12.1}%",
        m.l2.load_hit_rate() * 100.0
    );
}
