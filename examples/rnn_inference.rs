//! The paper's motivating multi-kernel scenario: RNN inference
//! (DeepBench LSTM/GRU, batch 1, sequence length 16, hidden size 128 — the
//! English-Vietnamese translation configuration).
//!
//! Batch-1 RNNs launch hundreds of tiny kernels; execution is dominated by
//! kernel-launch overhead and memory latency rather than bandwidth, which
//! is exactly where a coherent, cached CPU-GPU memory system earns its
//! keep. This example compares LSTM and GRU, forward and forward+backward,
//! under uncached and cached policies.
//!
//! ```text
//! cargo run --release --example rnn_inference
//! ```

use miopt::runner::run_one;
use miopt::{CachePolicy, PolicyConfig, SystemConfig};
use miopt_workloads::{by_name, SuiteConfig};

fn main() {
    let scale = SuiteConfig::paper(); // RNN footprints are absolute: cheap at any scale
    let cfg = SystemConfig::paper_table1();

    println!("RNN inference and training under GPU caching policies");
    println!(
        "{:10} {:>8} {:>12} {:>12} {:>10} {:>10}",
        "network", "kernels", "Uncached", "CacheR", "speedup", "DRAM ratio"
    );

    for name in ["FwLSTM", "FwGRU", "FwBwLSTM", "FwBwGRU"] {
        let w = by_name(&scale, name).expect("suite workload");
        let unc = run_one(&cfg, &w, PolicyConfig::of(CachePolicy::Uncached)).expect("run finishes");
        let r = run_one(&cfg, &w, PolicyConfig::of(CachePolicy::CacheR)).expect("run finishes");
        println!(
            "{:10} {:>8} {:>12} {:>12} {:>9.3}x {:>9.1}%",
            name,
            w.total_kernels(),
            unc.metrics.cycles,
            r.metrics.cycles,
            unc.metrics.cycles as f64 / r.metrics.cycles as f64,
            r.metrics.dram_accesses() as f64 / unc.metrics.dram_accesses() as f64 * 100.0,
        );
    }

    // Launch overhead sensitivity: the paper's Section IX warns that MI
    // workloads launch kernels ever more frequently — here is why that
    // matters.
    println!("\nlaunch-overhead sensitivity (FwLSTM, CacheR):");
    for overhead in [500u64, 3000, 10000] {
        let cfg = SystemConfig::builder()
            .launch_overhead(overhead)
            .build()
            .expect("sensitivity config is valid");
        let w = by_name(&scale, "FwLSTM").expect("suite workload");
        let r = run_one(&cfg, &w, PolicyConfig::of(CachePolicy::CacheR)).expect("run finishes");
        println!(
            "  launch overhead {:>6} cycles -> total {:>12} cycles",
            overhead, r.metrics.cycles
        );
    }
}
