//! Sweep every caching policy — the three static policies plus the paper's
//! optimization ladder — over one benchmark and report the comparison the
//! paper makes in Figures 6 and 10.
//!
//! The six runs go through the `miopt-harness` worker pool, so they use
//! every available core and still produce exactly the numbers a serial
//! sweep would.
//!
//! ```text
//! cargo run --release -p miopt-harness --example policy_sweep -- [workload]
//! ```

use miopt::runner::SweepSpec;
use miopt::SystemConfig;
use miopt_harness::sweep::{run_sweep, SweepOptions};
use miopt_workloads::{by_name, Category, SuiteConfig};
use std::sync::Arc;

fn main() {
    let workload_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "FwPool".to_string());
    let scale = SuiteConfig::quick();
    let workload = by_name(&scale, &workload_name)
        .unwrap_or_else(|| panic!("unknown workload {workload_name:?}"));
    let cfg = SystemConfig::paper_table1();

    println!(
        "policy sweep for {} (paper category: {:?})",
        workload.name, workload.category
    );
    println!(
        "{:14} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "config", "cycles", "vs Unc", "DRAM", "rowhit%", "stalls/rq"
    );

    let spec = Arc::new(SweepSpec::figures(cfg, vec![workload.clone()]));
    let run = run_sweep(&spec, "example-policy-sweep", &SweepOptions::default());
    let results = run.results(&spec).expect("sweep jobs succeed");
    let ladder = spec.assemble_ladders(&results).remove(0);
    let base = ladder.uncached().metrics.cycles as f64;

    for run in ladder.statics.iter().chain(ladder.ladder.iter()) {
        let m = &run.metrics;
        println!(
            "{:14} {:>12} {:>9.3}x {:>10} {:>9.1}% {:>10.3}",
            run.policy.label(),
            m.cycles,
            m.cycles as f64 / base,
            m.dram_accesses(),
            m.row_hit_ratio() * 100.0,
            m.stalls_per_request(),
        );
    }

    let measured = miopt::runner::classify(&ladder.statics);
    println!("\nmeasured category: {measured:?}");
    if measured == workload.category {
        println!("matches the paper's Figure 6 classification.");
    } else {
        println!(
            "differs from the paper's classification ({:?}) — expected at reduced scales.",
            workload.category
        );
    }
    let best = ladder.static_best();
    let pcby = &ladder.ladder[2];
    println!(
        "CacheRW-PCby vs static best ({}): {:.3}x",
        best.policy.label(),
        pcby.metrics.cycles as f64 / best.metrics.cycles as f64
    );
    let _ = Category::Insensitive; // (re-exported for doc purposes)
}
