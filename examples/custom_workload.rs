//! Build a *custom* workload against the public API: a strided attention-
//! score kernel that is not part of the paper's 17 benchmarks, and see
//! which caching policy suits it.
//!
//! This demonstrates the extension surface a downstream user has: write an
//! [`AddrGen`], describe the kernel program, and run it through the same
//! system and metrics as the Table 2 suite.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use miopt::runner::run_one;
use miopt::{CachePolicy, PolicyConfig, SystemConfig};
use miopt_engine::Addr;
use miopt_gpu::{AccessCtx, KernelDesc, KernelProgram, Op};
use miopt_workloads::{Category, Workload};
use std::sync::Arc;

/// Attention-like access: every work-group re-reads a shared key matrix
/// (cache-friendly) while streaming its own query rows (cache-hostile).
fn attention_gen(keys_bytes: u64, queries_base: u64) -> impl Fn(&AccessCtx) -> Option<Addr> {
    move |ctx: &AccessCtx| {
        let lane = u64::from(ctx.lane);
        match ctx.pattern {
            // Pattern 0: shared key matrix, swept cyclically per wg.
            0 => {
                let pos = (u64::from(ctx.iter) * 64 + lane) * 4 + u64::from(ctx.wg) * 1024;
                Some(Addr(pos % keys_bytes))
            }
            // Pattern 1: private query stream.
            1 => {
                let wf = u64::from(ctx.wg) * 2 + u64::from(ctx.wf);
                let pos = ((wf * 64 + u64::from(ctx.iter)) * 64 + lane) * 4;
                Some(Addr(queries_base + pos))
            }
            // Pattern 2: score output stream.
            _ => {
                let wf = u64::from(ctx.wg) * 2 + u64::from(ctx.wf);
                let pos = ((wf * 64 + u64::from(ctx.iter)) * 64 + lane) * 4;
                Some(Addr(queries_base + (1 << 30) + pos))
            }
        }
    }
}

fn main() {
    let keys_bytes = 1 << 21; // 2 MB of keys: fits the 4 MB L2
    let kernel = Arc::new(KernelDesc {
        name: "attention_scores".to_string(),
        template_id: 900,
        wgs: 96,
        wfs_per_wg: 2,
        program: KernelProgram::new(
            vec![
                Op::Load { pattern: 0 },
                Op::Load { pattern: 1 },
                Op::WaitCnt { max: 8 },
                Op::Valu { count: 6 },
                Op::Store { pattern: 2 },
            ],
            64,
        ),
        gen: Arc::new(attention_gen(keys_bytes, 1 << 32)),
    });
    let workload = Workload {
        name: "Attention".to_string(),
        category: Category::ReuseSensitive,
        launches: vec![kernel],
        footprint: keys_bytes + 2 * (96 * 2 * 64 * 64 * 4),
    };

    let cfg = SystemConfig::paper_table1();
    println!("custom attention kernel under each static policy:");
    for p in CachePolicy::ALL {
        let r = run_one(&cfg, &workload, PolicyConfig::of(p)).expect("run finishes");
        println!(
            "{:9} cycles={:>10} DRAM={:>9} L2 hit rate={:>5.1}% row hit={:>5.1}%",
            p.to_string(),
            r.metrics.cycles,
            r.metrics.dram_accesses(),
            r.metrics.l2.load_hit_rate() * 100.0,
            r.metrics.row_hit_ratio() * 100.0,
        );
    }
}
