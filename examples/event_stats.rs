//! Event-core effectiveness: how many events the discrete-event engine
//! dispatched versus the cycles it simulated, per workload and policy —
//! the ratio that explains the speedup over `--no-skip` per-cycle
//! stepping (which pays ~12 stage polls every cycle, busy or not).
//!
//! ```text
//! cargo run --release --example event_stats
//! cargo run --release --example event_stats -- FwGRU Uncached
//! cargo run --release --example event_stats -- FwGRU Uncached latency4x
//! ```

use miopt::{ApuSystem, CachePolicy, PolicyConfig, SystemConfig};
use miopt_workloads::{by_name, SuiteConfig};

/// `paper` is the Table 1 machine: its realistic interconnect/DRAM
/// latencies and 3000-cycle launch overhead are what make MI workloads
/// latency-bound (and event-driven execution effective). `latency4x` is
/// the same memory system seen from a 4x-clocked GPU — every latency in
/// core cycles scaled by 4.
fn config(name: &str) -> SystemConfig {
    let mut cfg = SystemConfig::paper_table1();
    match name {
        "paper" => {}
        "latency4x" => {
            cfg.lat_cu_l1 *= 4;
            cfg.lat_l1_resp *= 4;
            cfg.lat_l1_l2 *= 4;
            cfg.lat_l2_resp *= 4;
            cfg.lat_l2_dram *= 4;
            cfg.lat_dram_resp *= 4;
        }
        other => panic!("unknown config {other:?} (paper|latency4x)"),
    }
    cfg.validate().expect("config is valid");
    cfg
}

fn report(name: &str, policy: CachePolicy, cfg_name: &str) {
    let w = by_name(&SuiteConfig::quick(), name).expect("suite workload");
    let mut sys = ApuSystem::new(config(cfg_name), PolicyConfig::of(policy), &w);
    let m = sys.run_to_completion(20_000_000_000).expect("run finished");
    let (events, active) = sys.event_stats();
    let quiet = 100.0 * (1.0 - active as f64 / m.cycles as f64);
    println!(
        "{name:8} {:12} {:>10} cycles  {:>10} events  {:>9} active ({:>5.1}% event-free, {:.2} events/active cycle)",
        PolicyConfig::of(policy).label(),
        m.cycles,
        events,
        active,
        quiet,
        events as f64 / active.max(1) as f64,
    );
    let mut by_actor = sys.event_stats_by_actor();
    by_actor.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    print!("         dispatches by stage:");
    for (stage, n) in by_actor.iter().filter(|&&(_, n)| n > 0) {
        print!("  {stage}={:.1}%", 100.0 * *n as f64 / events.max(1) as f64);
    }
    println!();
}

fn main() {
    let mut args = std::env::args().skip(1);
    match (args.next(), args.next()) {
        (Some(w), Some(p)) => {
            let policy = match p.as_str() {
                "Uncached" => CachePolicy::Uncached,
                "CacheR" => CachePolicy::CacheR,
                "CacheRW" => CachePolicy::CacheRW,
                other => panic!("unknown policy {other:?} (Uncached|CacheR|CacheRW)"),
            };
            let cfg_name = args.next().unwrap_or_else(|| "paper".to_string());
            report(&w, policy, &cfg_name);
        }
        _ => {
            for (w, p) in [
                ("FwGRU", CachePolicy::Uncached),
                ("FwGRU", CachePolicy::CacheRW),
                ("FwLSTM", CachePolicy::Uncached),
                ("FwSoft", CachePolicy::Uncached),
                ("BwBN", CachePolicy::CacheRW),
            ] {
                report(w, p, "paper");
            }
        }
    }
}
