//! Sweep RNN input sizes, as the paper's Section V.C invites: "As hidden
//! layer size, sequence length, and batch size increase, the number of
//! kernels and GPU footprint also increase. Thus, these workloads are
//! useful for examining the behavior of a variety of different RNN
//! training and inference sizes."
//!
//! This example varies the hidden-layer size and the sequence length of
//! an LSTM forward pass and reports how the Uncached/CacheR trade-off
//! moves: bigger hidden layers shift the bottleneck from launch overhead
//! and latency toward weight bandwidth, where caching earns more. Each
//! size sweep is expressed as one `SweepSpec` grid and executed through
//! the `miopt-harness` worker pool.
//!
//! ```text
//! cargo run --release -p miopt-harness --example rnn_sweep
//! ```

use miopt::runner::{RunOptions, RunResult, SweepSpec};
use miopt::{CachePolicy, PolicyConfig, SystemConfig};
use miopt_harness::sweep::{run_sweep, SweepOptions};
use miopt_workloads::rnn::{rnn_with_config, RnnConfig};
use miopt_workloads::Workload;
use std::sync::Arc;

/// Runs `workloads` under Uncached and CacheR through the pool and
/// returns one `[Uncached, CacheR]` row per workload.
fn sweep_two_policies(
    cfg: &SystemConfig,
    workloads: Vec<Workload>,
    name: &str,
) -> Vec<Vec<RunResult>> {
    let spec = Arc::new(SweepSpec {
        cfg: cfg.clone(),
        workloads,
        policies: vec![
            PolicyConfig::of(CachePolicy::Uncached),
            PolicyConfig::of(CachePolicy::CacheR),
        ],
        n_static: 2,
        run_opts: RunOptions::default(),
        faults: Vec::new(),
    });
    let run = run_sweep(&spec, name, &SweepOptions::default());
    let results = run.results(&spec).expect("sweep jobs succeed");
    spec.assemble_statics(&results)
}

fn main() {
    let cfg = SystemConfig::paper_table1();

    println!("LSTM forward: hidden-size sweep (sequence length 16)");
    println!(
        "{:>8} {:>9} {:>12} {:>12} {:>12} {:>10}",
        "hidden", "kernels", "footprint", "Uncached", "CacheR", "speedup"
    );
    let hiddens = [64u64, 128, 256, 512];
    let workloads: Vec<Workload> = hiddens
        .iter()
        .map(|&hidden| {
            rnn_with_config(
                "FwLSTM",
                9,
                &RnnConfig {
                    gates: 4,
                    hidden,
                    seq_len: 16,
                    backward: false,
                },
            )
        })
        .collect();
    let rows = sweep_two_policies(&cfg, workloads.clone(), "example-rnn-hidden");
    for ((hidden, w), row) in hiddens.iter().zip(&workloads).zip(&rows) {
        let (unc, r) = (&row[0], &row[1]);
        println!(
            "{:>8} {:>9} {:>10}KB {:>12} {:>12} {:>9.3}x",
            hidden,
            w.total_kernels(),
            w.footprint_bytes() / 1024,
            unc.metrics.cycles,
            r.metrics.cycles,
            unc.metrics.cycles as f64 / r.metrics.cycles as f64,
        );
    }

    println!("\nLSTM forward: sequence-length sweep (hidden 128)");
    println!(
        "{:>8} {:>9} {:>12} {:>12} {:>10}",
        "seq", "kernels", "Uncached", "CacheR", "speedup"
    );
    let seqs = [4u32, 8, 16, 32];
    let workloads: Vec<Workload> = seqs
        .iter()
        .map(|&seq_len| {
            rnn_with_config(
                "FwLSTM",
                9,
                &RnnConfig {
                    gates: 4,
                    hidden: 128,
                    seq_len,
                    backward: false,
                },
            )
        })
        .collect();
    let rows = sweep_two_policies(&cfg, workloads.clone(), "example-rnn-seq");
    for ((seq_len, w), row) in seqs.iter().zip(&workloads).zip(&rows) {
        let (unc, r) = (&row[0], &row[1]);
        println!(
            "{:>8} {:>9} {:>12} {:>12} {:>9.3}x",
            seq_len,
            w.total_kernels(),
            unc.metrics.cycles,
            r.metrics.cycles,
            unc.metrics.cycles as f64 / r.metrics.cycles as f64,
        );
    }
}
