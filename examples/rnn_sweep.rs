//! Sweep RNN input sizes, as the paper's Section V.C invites: "As hidden
//! layer size, sequence length, and batch size increase, the number of
//! kernels and GPU footprint also increase. Thus, these workloads are
//! useful for examining the behavior of a variety of different RNN
//! training and inference sizes."
//!
//! This example varies the hidden-layer size and the sequence length of
//! an LSTM forward pass and reports how the Uncached/CacheR trade-off
//! moves: bigger hidden layers shift the bottleneck from launch overhead
//! and latency toward weight bandwidth, where caching earns more.
//!
//! ```text
//! cargo run --release --example rnn_sweep
//! ```

use miopt::runner::run_one;
use miopt::{CachePolicy, PolicyConfig, SystemConfig};
use miopt_workloads::rnn::{rnn_with_config, RnnConfig};

fn main() {
    let cfg = SystemConfig::paper_table1();

    println!("LSTM forward: hidden-size sweep (sequence length 16)");
    println!(
        "{:>8} {:>9} {:>12} {:>12} {:>12} {:>10}",
        "hidden", "kernels", "footprint", "Uncached", "CacheR", "speedup"
    );
    for hidden in [64u64, 128, 256, 512] {
        let w = rnn_with_config(
            "FwLSTM",
            9,
            &RnnConfig {
                gates: 4,
                hidden,
                seq_len: 16,
                backward: false,
            },
        );
        let unc = run_one(&cfg, &w, PolicyConfig::of(CachePolicy::Uncached));
        let r = run_one(&cfg, &w, PolicyConfig::of(CachePolicy::CacheR));
        println!(
            "{:>8} {:>9} {:>10}KB {:>12} {:>12} {:>9.3}x",
            hidden,
            w.total_kernels(),
            w.footprint_bytes() / 1024,
            unc.metrics.cycles,
            r.metrics.cycles,
            unc.metrics.cycles as f64 / r.metrics.cycles as f64,
        );
    }

    println!("\nLSTM forward: sequence-length sweep (hidden 128)");
    println!(
        "{:>8} {:>9} {:>12} {:>12} {:>10}",
        "seq", "kernels", "Uncached", "CacheR", "speedup"
    );
    for seq_len in [4u32, 8, 16, 32] {
        let w = rnn_with_config(
            "FwLSTM",
            9,
            &RnnConfig {
                gates: 4,
                hidden: 128,
                seq_len,
                backward: false,
            },
        );
        let unc = run_one(&cfg, &w, PolicyConfig::of(CachePolicy::Uncached));
        let r = run_one(&cfg, &w, PolicyConfig::of(CachePolicy::CacheR));
        println!(
            "{:>8} {:>9} {:>12} {:>12} {:>9.3}x",
            seq_len,
            w.total_kernels(),
            unc.metrics.cycles,
            r.metrics.cycles,
            unc.metrics.cycles as f64 / r.metrics.cycles as f64,
        );
    }
}
